// Tests that the literal Algorithm 1 (§5.2) agrees with the direct convex
// block optimizer — they compute the same fixpoint by different routes.
#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "core/block.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

TEST(Algorithm1, AgreesWithDirectOptimizerSingleTask) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  std::vector<Task> ts{task(0, 0.0, 0.100, 3.0)};
  const auto a1 = solve_block_algorithm1(ts, cfg);
  const auto direct = solve_block(ts, cfg);
  ASSERT_TRUE(a1.feasible && direct.feasible);
  expect_near_rel(direct.energy, a1.energy, 1e-6, "single task");
}

TEST(Algorithm1, AgreesWithDirectOptimizerRandomBlocks) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const TaskSet ts = make_agreeable(2 + seed % 4, seed * 5, 0.040);
    const auto sorted = ts.sorted_by_deadline().tasks();
    const auto a1 = solve_block_algorithm1(sorted, cfg);
    const auto direct = solve_block(sorted, cfg);
    ASSERT_TRUE(direct.feasible) << "seed " << seed;
    ASSERT_TRUE(a1.feasible) << "seed " << seed;
    expect_near_rel(direct.energy, a1.energy, 1e-5, "seed block");
  }
}

TEST(Algorithm1, AgreesAcrossStaticPowerRatios) {
  // Sweep alpha vs alpha_m: exercises both phases of the algorithm — heavy
  // memory pushes tasks to align (Type-II, capped by s_1), heavy core power
  // evicts them to race at s_0 (Type-I).
  for (double alpha : {0.05, 0.31, 2.0}) {
    for (double alpha_m : {0.2, 4.0, 20.0}) {
      const auto cfg = make_cfg(alpha, alpha_m, 1900.0);
      const TaskSet ts = make_agreeable(4, 1234, 0.040);
      const auto sorted = ts.sorted_by_deadline().tasks();
      const auto a1 = solve_block_algorithm1(sorted, cfg);
      const auto direct = solve_block(sorted, cfg);
      ASSERT_TRUE(direct.feasible);
      ASSERT_TRUE(a1.feasible) << alpha << " " << alpha_m;
      expect_near_rel(direct.energy, a1.energy, 1e-5, "config block");
    }
  }
}

TEST(Algorithm1, TypeIITaskSpeedsWithinCriticalBand) {
  // Lemma/Table 2: aligned (window-filling) tasks end up with speeds in
  // [s_0, s_1]; evicted tasks run exactly at s_0.
  const auto cfg = make_cfg(0.31, 4.0, 0.0);
  const TaskSet ts = make_agreeable(5, 777, 0.030);
  const auto sorted = ts.sorted_by_deadline().tasks();
  const auto a1 = solve_block_algorithm1(sorted, cfg);
  ASSERT_TRUE(a1.feasible);
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    const auto& p = a1.placements[k];
    const double s0 = cfg.core.critical_speed(sorted[k].filled_speed());
    const double s1 = cfg.memory_critical_speed(sorted[k].filled_speed());
    EXPECT_GE(p.speed, s0 * (1.0 - 1e-6)) << "task " << k;
    EXPECT_LE(p.speed, s1 * (1.0 + 1e-6)) << "task " << k;
  }
}

}  // namespace
}  // namespace sdem
