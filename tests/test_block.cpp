// Tests for the unified single-block optimizer (core/block.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "core/block.hpp"
#include "core/reference.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

TEST(BlockObjective, WindowEnergyConvexPieces) {
  const auto cfg = make_cfg(0.31, 4.0, 0.0);
  const Task t = task(0, 0.0, 1.0, 3.0);
  // Below w/s_m the task fills the window: energy strictly decreasing.
  const double s_m = cfg.core.critical_speed_raw();
  const double knee = 3.0 / s_m;
  const double e1 = task_window_energy(t, cfg.core, 0.25 * knee);
  const double e2 = task_window_energy(t, cfg.core, 0.5 * knee);
  const double e3 = task_window_energy(t, cfg.core, knee);
  EXPECT_GT(e1, e2);
  EXPECT_GT(e2, e3);
  // Beyond the knee the core races at s_m: energy flat.
  const double e4 = task_window_energy(t, cfg.core, 2.0 * knee);
  expect_near_rel(e3, e4, 1e-9, "flat beyond knee");
}

TEST(BlockObjective, WindowSpeedClamping) {
  const auto cfg = make_cfg(0.31, 4.0, 1000.0);
  const Task t = task(0, 0.0, 1.0, 3.0);
  // Tiny window: fill speed above s_up -> infeasible energy.
  EXPECT_TRUE(std::isinf(task_window_energy(t, cfg.core, 3.0 / 2000.0)));
  // Window matching s_up exactly: feasible.
  EXPECT_TRUE(std::isfinite(task_window_energy(t, cfg.core, 3.0 / 1000.0)));
}

TEST(BlockSolver, SingleTaskAlpha0FillsOrShrinks) {
  // alpha == 0: block objective = alpha_m (e-s) + beta w^3 (e-s)^-2 for one
  // task whose region contains the busy interval.
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  std::vector<Task> ts{task(0, 0.0, 0.100, 3.0)};
  const auto res = solve_block(ts, cfg);
  ASSERT_TRUE(res.feasible);
  const double t_opt = std::cbrt(2.0 * cfg.core.beta * 27.0 / 4.0);
  expect_near_rel(t_opt, res.e - res.s, 1e-6, "interval length");
}

TEST(BlockSolver, MatchesReferenceAlpha0) {
  const auto cfg = make_cfg(0.0, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TaskSet ts = make_agreeable(2 + seed % 4, seed);
    const auto res = solve_block(ts.sorted_by_deadline().tasks(), cfg);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    const double ref = reference_block(ts.sorted_by_deadline().tasks(), cfg);
    expect_near_rel(ref, res.energy, 1e-5, "vs 2-D reference");
  }
}

TEST(BlockSolver, MatchesReferenceAlphaNonzero) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TaskSet ts = make_agreeable(2 + seed % 4, seed * 13);
    const auto res = solve_block(ts.sorted_by_deadline().tasks(), cfg);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    const double ref = reference_block(ts.sorted_by_deadline().tasks(), cfg);
    expect_near_rel(ref, res.energy, 1e-5, "vs 2-D reference");
  }
}

TEST(BlockSolver, PlacementsRespectWindows) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = make_agreeable(5, seed * 7);
    const auto sorted = ts.sorted_by_deadline().tasks();
    const auto res = solve_block(sorted, cfg);
    ASSERT_TRUE(res.feasible);
    for (std::size_t k = 0; k < sorted.size(); ++k) {
      const auto& p = res.placements[k];
      EXPECT_GE(p.start, sorted[k].release - 1e-9);
      EXPECT_LE(p.start + p.len, sorted[k].deadline + 1e-9);
      EXPECT_GE(p.start, res.s - 1e-9);
      EXPECT_LE(p.start + p.len, res.e + 1e-9);
      expect_near_rel(sorted[k].work, p.len * p.speed, 1e-9, "work done");
    }
  }
}

TEST(BlockSolver, EnergyAtMatchesPlacementSum) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  const TaskSet ts = make_agreeable(4, 99);
  const auto sorted = ts.sorted_by_deadline().tasks();
  const auto res = solve_block(sorted, cfg);
  ASSERT_TRUE(res.feasible);
  double manual = cfg.memory.alpha_m * (res.e - res.s);
  for (const auto& p : res.placements) {
    if (p.len > 0.0) manual += cfg.core.exec_energy(p.speed * p.len, p.speed);
  }
  expect_near_rel(res.energy, manual, 1e-9, "objective decomposition");
}

TEST(BlockSolver, DisjointRegionsForcedTogetherCostMore) {
  // Two tasks with a gap between their regions: one busy interval must span
  // the hole, paying memory static power for dead time.
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  std::vector<Task> together{task(0, 0.0, 0.010, 2.0), task(1, 0.050, 0.060, 2.0)};
  const auto one_block = solve_block(together, cfg);
  ASSERT_TRUE(one_block.feasible);
  const auto a = solve_block({together[0]}, cfg);
  const auto b = solve_block({together[1]}, cfg);
  EXPECT_GT(one_block.energy, a.energy + b.energy - 1e-12);
  // The forced block spans the hole.
  EXPECT_LE(one_block.s, 0.010 + 1e-9);
  EXPECT_GE(one_block.e, 0.050 - 1e-9);
}

}  // namespace
}  // namespace sdem
