// Golden-equivalence suite for the incremental block solver
// (core/block_context.hpp) against the seed implementation it replaced
// (solve_block_reference / solve_agreeable_reference): energies must agree
// to <= 1e-9 relative, feasibility decisions must be identical, schedules
// must stay validator-clean, and the row-parallel DP must be bit-identical
// to the serial fill at any worker count.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/agreeable.hpp"
#include "core/block.hpp"
#include "core/block_context.hpp"
#include "sched/validate.hpp"
#include "support/thread_pool.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

/// Fast vs reference single-block comparison on one task vector.
void expect_block_matches(const std::vector<Task>& tasks,
                          const SystemConfig& cfg, const char* what) {
  const BlockResult fast = solve_block(tasks, cfg);
  const BlockResult ref = solve_block_reference(tasks, cfg);
  ASSERT_EQ(fast.feasible, ref.feasible) << what;
  if (!ref.feasible) return;
  expect_near_rel(ref.energy, fast.energy, 1e-9, what);
  // The optima themselves can drift along flat valley floors, but both must
  // price to the same objective value under the exact evaluator.
  expect_near_rel(block_energy_at(tasks, cfg, ref.s, ref.e),
                  block_energy_at(tasks, cfg, fast.s, fast.e), 1e-9, what);
  ASSERT_EQ(fast.placements.size(), ref.placements.size()) << what;
}

/// Fast vs reference DP comparison on one task set, plus validation.
void expect_agreeable_matches(const TaskSet& ts, const SystemConfig& cfg,
                              const char* what) {
  const OfflineResult fast = solve_agreeable(ts, cfg);
  const OfflineResult ref = solve_agreeable_reference(ts, cfg);
  ASSERT_EQ(fast.feasible, ref.feasible) << what;
  if (!ref.feasible) return;
  expect_near_rel(ref.energy, fast.energy, 1e-9, what);
  EXPECT_EQ(fast.case_index, ref.case_index) << what;  // same block count
  expect_near_rel(ref.sleep_time, fast.sleep_time, 1e-9, what);
  const auto v = validate_schedule(fast.schedule, ts, cfg);
  EXPECT_TRUE(v.ok) << what << ": " << v.error;
}

TEST(BlockIncremental, MatchesReferenceOnAgreeableSets) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto cfg = make_cfg(seed % 2 ? 0.31 : 0.0, 4.0, 1900.0);
    const TaskSet ts = make_agreeable(2 + static_cast<int>(seed % 7), seed,
                                      0.010 + 0.015 * (seed % 5));
    expect_block_matches(ts.sorted_by_deadline().tasks(), cfg, "agreeable");
  }
}

TEST(BlockIncremental, MatchesReferenceOnCommonReleaseSets) {
  // Common releases make every later task span the earlier boxes, which
  // exercises the both-sides-clipped (coupled) class of the classifier.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto cfg = make_cfg(seed % 2 ? 0.31 : 0.0, 4.0, 1900.0);
    const TaskSet ts =
        make_common_release(3 + static_cast<int>(seed % 6), 0.0, seed);
    expect_block_matches(ts.sorted_by_deadline().tasks(), cfg, "common");
  }
}

TEST(BlockIncremental, MatchesReferenceUnderTightSpeedCap) {
  // A low s_up pushes optima onto the feasibility boundary, where the
  // 1e-9 slack of the clamped regime decides feasibility; fast and
  // reference must make identical calls either way.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto cfg = make_cfg(0.31, 4.0, 700.0 + 50.0 * (seed % 4));
    const TaskSet ts = make_agreeable(2 + static_cast<int>(seed % 5), seed,
                                      0.020);
    expect_block_matches(ts.sorted_by_deadline().tasks(), cfg, "tight cap");
  }
}

TEST(BlockIncremental, DegenerateSingleTask) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  expect_block_matches({task(0, 0.0, 0.100, 3.0)}, cfg, "single");
  expect_block_matches({task(0, 0.0, 0.100, 0.0)}, cfg, "single zero-work");
}

TEST(BlockIncremental, DegenerateZeroWorkTaskInVector) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  std::vector<Task> ts{task(0, 0.000, 0.050, 2.0), task(1, 0.010, 0.060, 0.0),
                       task(2, 0.020, 0.080, 3.0)};
  expect_block_matches(ts, cfg, "zero-work inside");
}

TEST(BlockIncremental, DegenerateClippedBothSides) {
  // Task 0 spans the whole horizon while later deadlines carve interior e'
  // boxes: inside them task 0 is clipped on both sides (W = e' - s').
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  std::vector<Task> ts{task(0, 0.000, 0.200, 1.0), task(1, 0.000, 0.210, 4.0),
                       task(2, 0.000, 0.240, 2.0), task(3, 0.000, 0.300, 3.0)};
  expect_block_matches(ts, cfg, "coupled");
}

TEST(BlockIncremental, InfeasibleBlockDetected) {
  // 5 Mc inside 1 ms needs 5000 MHz > s_up = 1900: both paths infeasible,
  // and the context prunes it without opening a box.
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  const std::vector<Task> ts{task(0, 0.0, 0.001, 5.0)};
  EXPECT_FALSE(solve_block(ts, cfg).feasible);
  EXPECT_FALSE(solve_block_reference(ts, cfg).feasible);
  BlockContext ctx(cfg);
  ctx.push_task(ts[0]);
  EXPECT_TRUE(ctx.block_infeasible());
  EXPECT_FALSE(ctx.solve().feasible);
}

TEST(BlockIncremental, ContextGrowsLikeFreshSolves) {
  // The incremental context after k pushes must match a fresh solve of the
  // first k tasks — the exact access pattern of the DP's rows.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto cfg = make_cfg(seed % 2 ? 0.31 : 0.0, 4.0, 1900.0);
    const auto sorted =
        make_agreeable(6, seed, 0.030).sorted_by_deadline().tasks();
    BlockContext ctx(cfg);
    std::vector<Task> prefix;
    for (const Task& t : sorted) {
      ctx.push_task(t);
      prefix.push_back(t);
      const BlockSolution inc = ctx.solve();
      const BlockResult ref = solve_block_reference(prefix, cfg);
      ASSERT_EQ(inc.feasible, ref.feasible) << "seed " << seed;
      if (ref.feasible)
        expect_near_rel(ref.energy, inc.energy, 1e-9, "prefix energy");
    }
  }
}

TEST(BlockIncremental, AgreeableDpMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto cfg = make_cfg(seed % 2 ? 0.31 : 0.0, 4.0, 1900.0);
    const TaskSet ts = make_agreeable(3 + static_cast<int>(seed % 6), seed,
                                      0.010 + 0.030 * (seed % 4));
    expect_agreeable_matches(ts, cfg, "agreeable DP");
  }
}

TEST(BlockIncremental, AgreeableDpMatchesReferenceCommonRelease) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto cfg = make_cfg(0.31, 4.0, 1900.0);
    const TaskSet ts =
        make_common_release(4 + static_cast<int>(seed % 4), 0.0, seed);
    expect_agreeable_matches(ts, cfg, "common-release DP");
  }
}

TEST(BlockIncremental, RowParallelBitIdenticalAcrossJobs) {
  // The DP's parallel row fill must be bit-identical to the serial fill —
  // not just close: EXPECT_EQ on the doubles.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto cfg = make_cfg(seed % 2 ? 0.31 : 0.0, 4.0, 1900.0);
    const TaskSet ts = make_agreeable(7, seed, 0.040);
    const OfflineResult serial = solve_agreeable(ts, cfg, nullptr);
    for (int jobs : {1, 2, 8}) {
      ThreadPool pool(jobs);
      const OfflineResult par = solve_agreeable(ts, cfg, &pool);
      ASSERT_EQ(serial.feasible, par.feasible) << "jobs " << jobs;
      EXPECT_EQ(serial.energy, par.energy) << "jobs " << jobs;
      EXPECT_EQ(serial.sleep_time, par.sleep_time) << "jobs " << jobs;
      EXPECT_EQ(serial.case_index, par.case_index) << "jobs " << jobs;
      ASSERT_EQ(serial.schedule.segments().size(),
                par.schedule.segments().size())
          << "jobs " << jobs;
    }
  }
}

TEST(BlockIncremental, CrossCheckAuditsCleanly) {
  // Audit mode recomputes every fast probe with the exact O(k) evaluator;
  // a single regime or classification mismatch would count as a failure.
  BlockContext::reset_cross_check_counters();
  BlockContext::set_cross_check(true);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto cfg = make_cfg(seed % 2 ? 0.31 : 0.0, 4.0, 1900.0);
    const TaskSet ts = make_agreeable(5, seed, 0.030);
    solve_agreeable(ts, cfg);
  }
  BlockContext::set_cross_check(false);
  EXPECT_GT(BlockContext::cross_check_probes(), 0u);
  EXPECT_EQ(BlockContext::cross_check_failures(), 0u);
  BlockContext::reset_cross_check_counters();
}

}  // namespace
}  // namespace sdem
