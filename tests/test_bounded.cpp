// Tests for the bounded-core PARTITION substrate (Theorem 1).
#include <gtest/gtest.h>

#include <cmath>

#include "bounded/partition.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

TaskSet common_deadline_set(int n, std::uint64_t seed) {
  // Common release 0 / deadline D, random workloads.
  return make_common_release(n, 0.0, seed, 2.0, 5.0, 0.100, 0.100);
}

TEST(Bounded, EnergyFormulaMatchesEq2And3) {
  // Two cores, loads 3 and 5, alpha = 0: |I_b| per Eq. (2), E per Eq. (3).
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  double interval = 0.0;
  const double e = bounded_energy({3.0, 5.0}, cfg, 1.0, &interval);
  const double lambda = 3.0, beta = cfg.core.beta;
  const double sum_wl = 27.0 + 125.0;
  const double ib = std::pow((lambda - 1.0) * beta * sum_wl / 4.0, 1.0 / 3.0);
  expect_near_rel(ib, interval, 1e-12, "Eq. 2");
  expect_near_rel(beta * sum_wl / (ib * ib) + 4.0 * ib, e, 1e-12, "Eq. 3");
}

TEST(Bounded, IntervalClampedToDeadline) {
  const auto cfg = make_cfg(0.0, 1e-9, 0.0);  // almost-free memory: stretch
  double interval = 0.0;
  bounded_energy({3.0, 5.0}, cfg, 0.050, &interval);
  EXPECT_DOUBLE_EQ(interval, 0.050);
}

TEST(Bounded, IntervalClampedToSpeedCap) {
  const auto cfg = make_cfg(0.0, 1e9, 100.0);  // memory wants T -> 0
  double interval = 0.0;
  bounded_energy({3.0, 5.0}, cfg, 1.0, &interval);
  EXPECT_NEAR(interval, 5.0 / 100.0, 1e-12);
}

TEST(Bounded, BalancedSplitMinimizesEnergy) {
  // E is monotone in imbalance: {4,4} beats {3,5} beats {2,6}.
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  const double e44 = bounded_energy({4.0, 4.0}, cfg, 1.0);
  const double e35 = bounded_energy({3.0, 5.0}, cfg, 1.0);
  const double e26 = bounded_energy({2.0, 6.0}, cfg, 1.0);
  EXPECT_LT(e44, e35);
  EXPECT_LT(e35, e26);
}

TEST(Bounded, Exact2MatchesExhaustive) {
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = common_deadline_set(8, seed);
    const auto mm = solve_bounded_exact2(ts, cfg, 0.100);
    const auto ex = solve_bounded_exact(ts, cfg, 0.100, 2);
    ASSERT_TRUE(mm.feasible && ex.feasible);
    expect_near_rel(ex.energy, mm.energy, 1e-9, "meet-in-middle vs C^n");
  }
}

TEST(Bounded, PerfectPartitionFound) {
  // Workloads engineered to split exactly: {8, 7, 5, 4, 3, 1} -> 14/14.
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  TaskSet ts;
  const double w[] = {8, 7, 5, 4, 3, 1};
  for (int i = 0; i < 6; ++i) ts.add(task(i, 0.0, 1.0, w[i]));
  const auto res = solve_bounded_exact2(ts, cfg, 1.0);
  ASSERT_TRUE(res.feasible);
  double load0 = 0.0;
  for (int i = 0; i < 6; ++i) {
    if (res.assignment[i] == 0) load0 += w[i];
  }
  EXPECT_DOUBLE_EQ(load0, 14.0);
}

TEST(Bounded, LptNeverBeatsExactAndIsClose) {
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = common_deadline_set(9, seed * 13);
    const auto ex = solve_bounded_exact(ts, cfg, 0.100, 3);
    const auto lpt = solve_bounded_lpt(ts, cfg, 0.100, 3);
    ASSERT_TRUE(ex.feasible && lpt.feasible);
    EXPECT_GE(lpt.energy, ex.energy - 1e-9);
    EXPECT_LE(lpt.energy, ex.energy * 1.05) << "LPT+local search way off";
  }
}

TEST(Bounded, MoreCoresNeverHurt) {
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  const TaskSet ts = common_deadline_set(8, 3);
  double prev = 1e18;
  for (int c : {1, 2, 4, 8}) {
    const auto res = solve_bounded_lpt(ts, cfg, 0.100, c);
    ASSERT_TRUE(res.feasible);
    EXPECT_LE(res.energy, prev + 1e-9) << c << " cores";
    prev = res.energy;
  }
}

TEST(Bounded, AssignmentsComplete) {
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  const TaskSet ts = common_deadline_set(12, 77);
  const auto res = solve_bounded_lpt(ts, cfg, 0.100, 4);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.assignment.size(), ts.size());
  for (int c : res.assignment) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 4);
  }
}

}  // namespace
}  // namespace sdem
