// Tests for the bounded-core general-deadline scheduler heuristic.
#include <gtest/gtest.h>

#include "baseline/simple_policies.hpp"
#include "bounded/bounded_scheduler.hpp"
#include "sched/energy.hpp"
#include "sched/validate.hpp"
#include "sim/event_sim.hpp"
#include "sim/metrics.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::make_cfg;
using test::task;

TEST(BoundedScheduler, FeasibleOnRandomLoads) {
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SyntheticParams p;
    p.num_tasks = 24;
    p.max_interarrival = 0.050;
    const TaskSet ts = make_synthetic(p, seed);
    for (int cores : {2, 4, 8}) {
      cfg.num_cores = cores;
      const auto res = solve_bounded_general(ts, cfg, cores);
      ASSERT_TRUE(res.feasible) << "seed " << seed << " C " << cores;
      const auto v = validate_schedule(res.schedule, ts, cfg);
      EXPECT_TRUE(v.ok) << v.error << " seed " << seed << " C " << cores;
    }
  }
}

TEST(BoundedScheduler, EnergyMatchesAccounting) {
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.num_cores = 4;
  SyntheticParams p;
  p.num_tasks = 16;
  p.max_interarrival = 0.040;
  const TaskSet ts = make_synthetic(p, 3);
  const auto res = solve_bounded_general(ts, cfg, 4);
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.energy, system_energy(res.schedule, cfg),
              1e-9 * res.energy);
}

TEST(BoundedScheduler, MultiplierNeverHurts) {
  // The race-to-idle multiplier search must never do worse than m = 1
  // (plain YDS speeds), which is what the energy comparison inside the
  // solver guarantees; spot-check against a no-multiplier reconstruction.
  auto cfg = make_cfg(0.31, 8.0, 1900.0);
  cfg.num_cores = 2;
  SyntheticParams p;
  p.num_tasks = 10;
  p.max_interarrival = 0.030;
  const TaskSet ts = make_synthetic(p, 11);
  const auto res = solve_bounded_general(ts, cfg, 2);
  ASSERT_TRUE(res.feasible);
  // With heavy memory power the multiplier should engage: max speed above
  // the YDS baseline is expected (cores race to shed alpha_m).
  double max_speed = 0.0;
  for (const auto& seg : res.schedule.segments()) {
    max_speed = std::max(max_speed, seg.speed);
  }
  EXPECT_GT(max_speed, 0.0);
}

TEST(BoundedScheduler, MoreCoresNeverHurtMuch) {
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  SyntheticParams p;
  p.num_tasks = 20;
  p.max_interarrival = 0.030;
  const TaskSet ts = make_synthetic(p, 21);
  cfg.num_cores = 1;
  const auto one = solve_bounded_general(ts, cfg, 1);
  cfg.num_cores = 8;
  const auto eight = solve_bounded_general(ts, cfg, 8);
  if (one.feasible && eight.feasible) {
    // Heuristic, so allow slack — but 8 cores should not be dramatically
    // worse than 1 (it can parallelize and still race).
    EXPECT_LE(eight.energy, one.energy * 1.25);
  } else {
    EXPECT_TRUE(eight.feasible);  // 8 cores must at least be schedulable
  }
}

TEST(BoundedScheduler, OverloadRejected) {
  auto cfg = make_cfg(0.31, 4.0, 100.0);  // tiny s_up
  TaskSet ts;
  ts.add(task(0, 0.0, 0.010, 5.0));  // needs 500 MHz
  EXPECT_FALSE(solve_bounded_general(ts, cfg, 1).feasible);
}

TEST(BoundedScheduler, BeatsOnlinePolesOffline) {
  // Offline knowledge + the multiplier search should beat the naive online
  // poles on the same trace and core count (averaged over seeds).
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.num_cores = 4;
  double e_off = 0, e_race = 0, e_stretch = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SyntheticParams p;
    p.num_tasks = 24;
    p.max_interarrival = 0.060;
    const TaskSet ts = make_synthetic(p, seed * 77);
    const auto off = solve_bounded_general(ts, cfg, 4);
    ASSERT_TRUE(off.feasible);
    e_off += off.energy;
    RaceToIdlePolicy race;
    StretchPolicy stretch;
    const auto r = simulate(ts, cfg, race);
    const auto s = simulate(ts, cfg, stretch);
    e_race += evaluate_policy(r, cfg, SleepDiscipline::kOptimal, "r")
                  .energy.system_total();
    e_stretch += evaluate_policy(s, cfg, SleepDiscipline::kOptimal, "s")
                     .energy.system_total();
  }
  EXPECT_LT(e_off, e_race * 1.001);
  EXPECT_LT(e_off, e_stretch * 1.001);
}

}  // namespace
}  // namespace sdem
