// Tests for the Section 4.2 optimal scheme (common release, alpha != 0).
#include <gtest/gtest.h>

#include <cmath>

#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/reference.hpp"
#include "sched/energy.hpp"
#include "sched/validate.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

TEST(CommonReleaseAlpha, ReducesToAlpha0WhenStaticPowerVanishes) {
  const auto cfg = make_cfg(0.0, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const TaskSet ts = make_common_release(1 + seed % 9, 0.0, seed);
    const auto a = solve_common_release_alpha(ts, cfg);
    const auto b = solve_common_release_alpha0(ts, cfg);
    ASSERT_EQ(a.feasible, b.feasible) << "seed " << seed;
    if (a.feasible) expect_near_rel(b.energy, a.energy, 1e-9, "energies");
  }
}

TEST(CommonReleaseAlpha, MatchesReferenceAcrossConfigs) {
  for (double alpha : {0.05, 0.31, 1.0}) {
    for (double alpha_m : {1.0, 4.0, 8.0}) {
      const auto cfg = make_cfg(alpha, alpha_m, 1900.0);
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const TaskSet ts = make_common_release(1 + seed % 7, 0.0, seed * 37);
        const auto res = solve_common_release_alpha(ts, cfg);
        ASSERT_TRUE(res.feasible);
        const double ref = reference_common_release(ts, cfg);
        expect_near_rel(ref, res.energy, 1e-6, "vs reference");
      }
    }
  }
}

TEST(CommonReleaseAlpha, CriticalSpeedSingleTask) {
  // With a single task and wide deadline, the task runs at
  // s_cm-like balance: the memory is on exactly while the task runs, so the
  // optimal speed solves min (beta s^3 + alpha + alpha_m) w / s, i.e. the
  // memory-associated critical speed s_1.
  const auto cfg = make_cfg(0.31, 4.0, 0.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 10.0, 3.0));
  const auto res = solve_common_release_alpha(ts, cfg);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.schedule.size(), 1u);
  const double s_cm = cfg.memory_critical_speed_raw();
  expect_near_rel(s_cm, res.schedule.segments()[0].speed, 1e-6,
                  "single-task speed = s_cm");
}

TEST(CommonReleaseAlpha, EarlyTasksKeepCriticalSpeed) {
  // A short-deadline-but-small task and a big task: the small one should
  // race at its critical speed while the big one aligns with the memory.
  const auto cfg = make_cfg(0.31, 4.0, 0.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 0.5));   // small
  ts.add(task(1, 0.0, 1.0, 40.0));  // large
  const auto res = solve_common_release_alpha(ts, cfg);
  ASSERT_TRUE(res.feasible);
  const auto by_task = res.schedule.by_task();
  const double s0_small = cfg.core.critical_speed(0.5 / 1.0);
  if (res.case_index == 2) {
    expect_near_rel(s0_small, by_task.at(0)[0].speed, 1e-9,
                    "early task at s0");
  }
  // The large task defines the memory busy interval end.
  const double t_end = by_task.at(1)[0].end;
  EXPECT_GE(t_end, by_task.at(0)[0].end - 1e-12);
}

TEST(CommonReleaseAlpha, ScheduleFeasibleAndConsistent) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const TaskSet ts = make_common_release(1 + seed % 12, 0.0, seed * 101);
    const auto res = solve_common_release_alpha(ts, cfg);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    const auto v = validate_schedule(res.schedule, ts, cfg);
    ASSERT_TRUE(v.ok) << v.error << " seed " << seed;
    const auto e = compute_energy(res.schedule, cfg);
    expect_near_rel(res.energy, e.system_total(), 1e-9, "accounting");
  }
}

TEST(CommonReleaseAlpha, HigherStaticPowerShrinksBusyInterval) {
  // More expensive cores/memory => stronger race-to-idle: the busy interval
  // shrinks monotonically with alpha_m.
  TaskSet ts = make_common_release(6, 0.0, 7);
  double prev_busy = 1e9;
  for (double alpha_m : {0.5, 2.0, 8.0, 32.0}) {
    const auto cfg = make_cfg(0.31, alpha_m, 0.0);
    const auto res = solve_common_release_alpha(ts, cfg);
    ASSERT_TRUE(res.feasible);
    const double busy = res.schedule.memory_busy_time();
    EXPECT_LE(busy, prev_busy + 1e-12) << "alpha_m " << alpha_m;
    prev_busy = busy;
  }
}

TEST(CommonReleaseAlpha, CommonDeadlineClosedForm) {
  // Common release AND deadline: all tasks align; the optimum follows
  // Eqs. (7)/(8) with i = 1.
  const auto cfg = make_cfg(0.31, 4.0, 0.0);
  TaskSet ts;
  const double d = 0.100;
  ts.add(task(0, 0.0, d, 2.0));
  ts.add(task(1, 0.0, d, 3.0));
  ts.add(task(2, 0.0, d, 4.0));
  const auto res = solve_common_release_alpha(ts, cfg);
  ASSERT_TRUE(res.feasible);
  const double lambda = cfg.core.lambda;
  const double sum_wl = std::pow(2.0, 3) + std::pow(3.0, 3) + std::pow(4.0, 3);
  const double devices = 3 * cfg.core.alpha + cfg.memory.alpha_m;
  const double t_star = std::pow(
      cfg.core.beta * (lambda - 1.0) * sum_wl / devices, 1.0 / lambda);
  const double e_star = devices * t_star +
                        cfg.core.beta * sum_wl / (t_star * t_star);
  expect_near_rel(e_star, res.energy, 1e-9, "Eq.7/8 closed form");
}

}  // namespace
}  // namespace sdem
