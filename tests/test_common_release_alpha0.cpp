// Tests for the Section 4.1 optimal scheme (common release, alpha == 0).
#include <gtest/gtest.h>

#include <cmath>

#include "core/common_release_alpha0.hpp"
#include "core/reference.hpp"
#include "sched/energy.hpp"
#include "sched/validate.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

TEST(CommonReleaseAlpha0, SingleTaskBalancesMemoryAgainstDynamic) {
  // One task, alpha_m chosen so the interior optimum is strictly inside:
  // E(T) = alpha_m T + beta w^3 / T^2, minimized at T = (2 beta w^3 /
  // alpha_m)^(1/3).
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 0.100, 3.0));
  const auto res = solve_common_release_alpha0(ts, cfg);
  ASSERT_TRUE(res.feasible);
  const double t_opt =
      std::cbrt(2.0 * cfg.core.beta * 27.0 / cfg.memory.alpha_m);
  ASSERT_LT(t_opt, 0.100);  // interior
  expect_near_rel(0.100 - t_opt, res.sleep_time, 1e-9, "sleep time");
  const double e_opt = cfg.memory.alpha_m * t_opt +
                       cfg.core.beta * 27.0 / (t_opt * t_opt);
  expect_near_rel(e_opt, res.energy, 1e-9, "energy");
}

TEST(CommonReleaseAlpha0, SingleTaskPinnedAtDeadlineWhenMemoryCheap) {
  // Tiny alpha_m: stretching to the whole region wins, Delta = 0.
  const auto cfg = make_cfg(0.0, 1e-6, 0.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 0.050, 4.0));
  const auto res = solve_common_release_alpha0(ts, cfg);
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.sleep_time, 0.0, 1e-9);
}

TEST(CommonReleaseAlpha0, SpeedCapLimitsSleep) {
  // Huge alpha_m wants T -> 0, but s_up bounds the compression.
  const auto cfg = make_cfg(0.0, 1e4, 100.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 0.100, 5.0));  // w/s_up = 50 ms
  const auto res = solve_common_release_alpha0(ts, cfg);
  ASSERT_TRUE(res.feasible);
  expect_near_rel(0.050, res.sleep_time, 1e-9, "sleep capped by s_up");
  const auto v = validate_schedule(res.schedule, ts, cfg);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(CommonReleaseAlpha0, MatchesReferenceOnMixedDeadlines) {
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 0.020, 2.5));
  ts.add(task(1, 0.0, 0.060, 4.0));
  ts.add(task(2, 0.0, 0.120, 3.0));
  const auto res = solve_common_release_alpha0(ts, cfg);
  ASSERT_TRUE(res.feasible);
  const double ref = reference_common_release(ts, cfg);
  expect_near_rel(ref, res.energy, 1e-6, "vs reference");
}

TEST(CommonReleaseAlpha0, ScheduleEnergyMatchesAnalytic) {
  const auto cfg = make_cfg(0.0, 3.0, 1900.0);
  const TaskSet ts = make_common_release(8, 0.0, /*seed=*/42);
  const auto res = solve_common_release_alpha0(ts, cfg);
  ASSERT_TRUE(res.feasible);
  const auto v = validate_schedule(res.schedule, ts, cfg);
  ASSERT_TRUE(v.ok) << v.error;
  // Recompute from segments: memory busy + dynamic. With alpha == 0 the
  // accounting model charges exactly the analytic terms.
  const auto e = compute_energy(res.schedule, cfg);
  expect_near_rel(res.energy, e.system_total(), 1e-9, "accounting");
}

TEST(CommonReleaseAlpha0, BinarySearchAgreesWithScan) {
  const auto cfg = make_cfg(0.0, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const TaskSet ts = make_common_release(1 + seed % 17, 0.0, seed);
    const auto scan = solve_common_release_alpha0(ts, cfg);
    const auto bin = solve_common_release_alpha0_binary(ts, cfg);
    ASSERT_EQ(scan.feasible, bin.feasible) << "seed " << seed;
    if (scan.feasible) {
      expect_near_rel(scan.energy, bin.energy, 1e-9, "seed energy");
    }
  }
}

TEST(CommonReleaseAlpha0, DeltaMiMonotoneInCaseIndex) {
  // Eq. (5): Delta_mi increases with i. Probe it through local optima of a
  // deadline-spread instance: the winning case's Delta must lie in-domain.
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 0.010, 2.0));
  ts.add(task(1, 0.0, 0.030, 2.0));
  ts.add(task(2, 0.0, 0.070, 2.0));
  ts.add(task(3, 0.0, 0.120, 2.0));
  const auto res = solve_common_release_alpha0(ts, cfg);
  ASSERT_TRUE(res.feasible);
  ASSERT_GE(res.case_index, 1);
  // Every stretched task ends exactly at |I| - Delta.
  const double t_end = 0.120 - res.sleep_time;
  for (const auto& seg : res.schedule.segments()) {
    EXPECT_LE(seg.end, t_end + 1e-12);
  }
}

TEST(CommonReleaseAlpha0, RejectsNonCommonRelease) {
  const auto cfg = make_cfg(0.0, 4.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 0.1, 1.0));
  ts.add(task(1, 0.01, 0.1, 1.0));
  EXPECT_FALSE(solve_common_release_alpha0(ts, cfg).feasible);
}

TEST(CommonReleaseAlpha0, RejectsInfeasibleSpeed) {
  const auto cfg = make_cfg(0.0, 4.0, 100.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 0.010, 5.0));  // filled speed 500 MHz > 100
  EXPECT_FALSE(solve_common_release_alpha0(ts, cfg).feasible);
}

TEST(CommonReleaseAlpha0, ZeroWorkTasksAreFree) {
  const auto cfg = make_cfg(0.0, 4.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 0.1, 0.0));
  ts.add(task(1, 0.0, 0.1, 3.0));
  const auto res = solve_common_release_alpha0(ts, cfg);
  ASSERT_TRUE(res.feasible);
  for (const auto& seg : res.schedule.segments()) {
    EXPECT_EQ(seg.task_id, 1);
  }
}

TEST(CommonReleaseAlpha0, NonZeroReleaseShiftsSchedule) {
  const auto cfg = make_cfg(0.0, 4.0);
  TaskSet a, b;
  a.add(task(0, 0.0, 0.080, 3.0));
  a.add(task(1, 0.0, 0.040, 2.0));
  b.add(task(0, 1.0, 1.080, 3.0));
  b.add(task(1, 1.0, 1.040, 2.0));
  const auto ra = solve_common_release_alpha0(a, cfg);
  const auto rb = solve_common_release_alpha0(b, cfg);
  ASSERT_TRUE(ra.feasible && rb.feasible);
  expect_near_rel(ra.energy, rb.energy, 1e-12, "shift invariance");
  expect_near_rel(ra.sleep_time, rb.sleep_time, 1e-12, "shift invariance");
}

}  // namespace
}  // namespace sdem
