// Tests for the memory-contention probe.
#include <gtest/gtest.h>

#include "baseline/mbkp.hpp"
#include "core/online_sdem.hpp"
#include "mem/contention.hpp"
#include "sim/event_sim.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

ContentionParams params() {
  ContentionParams p;
  p.accesses_per_megacycle = 2000.0;
  p.service_time = 50e-9;
  p.banks = 8;
  return p;
}

TEST(Contention, SingleTaskHandComputed) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1000.0});  // 1000 MHz
  const auto r = analyze_contention(s, params());
  // rate = 1000 * 2000 = 2e6 req/s; u = 2e6 * 50e-9 / 8 = 0.0125.
  EXPECT_NEAR(r.peak_utilization, 0.0125, 1e-12);
  EXPECT_NEAR(r.mean_utilization, 0.0125, 1e-12);
  EXPECT_NEAR(r.busy_time, 1.0, 1e-12);
  EXPECT_EQ(r.saturated_fraction, 0.0);
  // M/D/1 wait = t_s u / (2(1-u)).
  EXPECT_NEAR(r.mean_wait, 50e-9 * 0.0125 / (2.0 * (1.0 - 0.0125)), 1e-18);
}

TEST(Contention, ParallelTasksAddLoad) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1000.0});
  s.add(Segment{1, 1, 0.0, 1.0, 1000.0});
  const auto r = analyze_contention(s, params());
  EXPECT_NEAR(r.peak_utilization, 0.025, 1e-12);
}

TEST(Contention, DisjointTasksDoNotAdd) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1000.0});
  s.add(Segment{1, 1, 2.0, 3.0, 1000.0});
  const auto r = analyze_contention(s, params());
  EXPECT_NEAR(r.peak_utilization, 0.0125, 1e-12);
  EXPECT_NEAR(r.busy_time, 2.0, 1e-12);
}

TEST(Contention, SaturationDetected) {
  auto p = params();
  p.banks = 1;
  p.accesses_per_megacycle = 20000.0;
  Schedule s;  // 1900 MHz * 20000 * 50e-9 = 1.9 >= 1
  s.add(Segment{0, 0, 0.0, 1.0, 1900.0});
  const auto r = analyze_contention(s, p);
  EXPECT_GE(r.peak_utilization, 1.0);
  EXPECT_NEAR(r.saturated_fraction, 1.0, 1e-12);
}

TEST(Contention, AlignmentConcentratesLoad) {
  // SDEM-ON batches executions; MBKP spreads them. The aligned schedule
  // must show a higher peak utilization on the same trace.
  auto cfg = SystemConfig::paper_default();
  SyntheticParams sp;
  sp.num_tasks = 80;
  sp.max_interarrival = 0.300;
  const TaskSet ts = make_synthetic(sp, 5);
  SdemOnPolicy sdem;
  MbkpPolicy mbkp;
  const auto a = simulate(ts, cfg, sdem);
  const auto b = simulate(ts, cfg, mbkp);
  const auto ra = analyze_contention(a.schedule, params());
  const auto rb = analyze_contention(b.schedule, params());
  EXPECT_GT(ra.peak_utilization, rb.peak_utilization);
}

TEST(Contention, EmptySchedule) {
  const auto r = analyze_contention(Schedule{}, params());
  EXPECT_EQ(r.busy_time, 0.0);
  EXPECT_EQ(r.peak_utilization, 0.0);
}

}  // namespace
}  // namespace sdem
