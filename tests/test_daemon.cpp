// In-process daemon tests (src/service/daemon.hpp): ephemeral-port TCP,
// requests fragmented across writes (the poll-loop partial-read
// regression), per-connection response ordering with multiple acceptors,
// malformed lines answered in order, and clean SHUTDOWN.
#include "service/daemon.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "support/json.hpp"

namespace sdem::service {
namespace {

// The daemon writes to sockets the peer may have closed; EPIPE is handled,
// the signal must not kill the test binary.
const struct IgnoreSigpipe {
  IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }
} g_ignore_sigpipe;

/// run() on a background thread; port() blocks until the listener is up.
struct DaemonHarness {
  explicit DaemonHarness(DaemonOptions opt) {
    opt.port = 0;
    opt.use_stdin = false;
    daemon = std::make_unique<Daemon>(std::move(opt));
    thread = std::thread([this] { rc = daemon->run(); });
    port = daemon->port();
  }
  ~DaemonHarness() {
    daemon->request_stop();
    if (thread.joinable()) thread.join();
  }

  std::unique_ptr<Daemon> daemon;
  std::thread thread;
  int port = -1;
  int rc = -1;
};

/// Blocking line-oriented TCP client with a 10 s receive timeout so a
/// daemon bug fails the test instead of hanging CI.
struct LineClient {
  explicit LineClient(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    timeval tv{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
  }
  ~LineClient() {
    if (fd >= 0) ::close(fd);
  }

  void send(const std::string& bytes) const {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  /// One response line (without the newline); fails the test on timeout.
  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      EXPECT_GT(n, 0) << "recv timed out or connection closed";
      if (n <= 0) return {};
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int fd = -1;
  std::string buf;
};

std::string submit_line(int island, int id, double release) {
  Json task = Json::object();
  task.set("id", id);
  task.set("release", release);
  task.set("deadline", release + 1.0);
  task.set("work", 0.05);
  Json req = Json::object();
  req.set("op", "SUBMIT");
  req.set("island", island);
  req.set("task", std::move(task));
  return req.dump(0);
}

TEST(Daemon, FragmentedSubmitAcrossTwoTcpWrites) {
  // Regression: a SUBMIT split mid-line across two TCP writes must be
  // reassembled by the poll loop, not dispatched per read().
  DaemonOptions opt;
  opt.shards = 2;
  DaemonHarness h(opt);
  ASSERT_GT(h.port, 0);
  LineClient c(h.port);

  const std::string line = submit_line(0, 1, 0.0) + "\n";
  const std::size_t cut = line.size() / 2;
  c.send(line.substr(0, cut));
  // Let the daemon's poll loop observe (and buffer) the first fragment.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  c.send(line.substr(cut));

  const Json resp = Json::parse(c.recv_line());
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump(0);
  EXPECT_EQ(resp.at("op").as_string(), "SUBMIT");
  EXPECT_EQ(resp.at("id").as_number(), 1.0);
}

TEST(Daemon, ManyFragmentsOneByteAtATime) {
  DaemonOptions opt;
  opt.shards = 1;
  DaemonHarness h(opt);
  LineClient c(h.port);
  const std::string line = submit_line(3, 7, 0.0) + "\n";
  for (char ch : line) c.send(std::string(1, ch));
  const Json resp = Json::parse(c.recv_line());
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump(0);
  EXPECT_EQ(resp.at("id").as_number(), 7.0);
}

TEST(Daemon, MalformedLineAnsweredInOrder) {
  // good / malformed / good in one write: three responses, per-connection
  // order preserved, the middle one an error envelope.
  DaemonOptions opt;
  opt.shards = 2;
  DaemonHarness h(opt);
  LineClient c(h.port);
  c.send(submit_line(0, 1, 0.0) + "\n" +
         "{\"op\":\"SUBMIT\",\"island\":0,\"task\":{\"id\":2}}\n" +
         submit_line(0, 3, 0.0) + "\n");
  const Json r1 = Json::parse(c.recv_line());
  const Json r2 = Json::parse(c.recv_line());
  const Json r3 = Json::parse(c.recv_line());
  EXPECT_TRUE(r1.at("ok").as_bool());
  EXPECT_EQ(r1.at("id").as_number(), 1.0);
  EXPECT_FALSE(r2.at("ok").as_bool());
  EXPECT_NE(r2.find("error"), nullptr);
  EXPECT_TRUE(r3.at("ok").as_bool());
  EXPECT_EQ(r3.at("id").as_number(), 3.0);
}

TEST(Daemon, PerConnectionOrderWithTwoAcceptors) {
  // Two pipelined connections, round-robined onto two acceptors, each
  // submitting to its own island: every connection must see its own
  // responses in its own request order, whatever the shards do.
  DaemonOptions opt;
  opt.shards = 4;
  opt.acceptors = 2;
  DaemonHarness h(opt);
  LineClient a(h.port);
  LineClient b(h.port);

  constexpr int kN = 50;
  std::string batch_a;
  std::string batch_b;
  for (int i = 0; i < kN; ++i) {
    batch_a += submit_line(0, i, 0.001 * i) + "\n";
    batch_b += submit_line(1, 1000 + i, 0.001 * i) + "\n";
  }
  a.send(batch_a);
  b.send(batch_b);
  for (int i = 0; i < kN; ++i) {
    const Json ra = Json::parse(a.recv_line());
    ASSERT_TRUE(ra.at("ok").as_bool()) << ra.dump(0);
    EXPECT_EQ(ra.at("island").as_number(), 0.0);
    EXPECT_EQ(ra.at("id").as_number(), static_cast<double>(i))
        << "connection A responses out of order";
  }
  for (int i = 0; i < kN; ++i) {
    const Json rb = Json::parse(b.recv_line());
    ASSERT_TRUE(rb.at("ok").as_bool()) << rb.dump(0);
    EXPECT_EQ(rb.at("island").as_number(), 1.0);
    EXPECT_EQ(rb.at("id").as_number(), static_cast<double>(1000 + i))
        << "connection B responses out of order";
  }
}

TEST(Daemon, StatsBarrierCountsEarlierSubmits) {
  DaemonOptions opt;
  opt.shards = 2;
  opt.acceptors = 2;
  DaemonHarness h(opt);
  LineClient c(h.port);
  constexpr int kN = 20;
  std::string batch;
  for (int i = 0; i < kN; ++i) batch += submit_line(i % 3, i, 0.0) + "\n";
  batch += "{\"op\":\"STATS\"}\n";
  c.send(batch);
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(Json::parse(c.recv_line()).at("ok").as_bool());
  }
  const Json stats = Json::parse(c.recv_line());
  ASSERT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("op").as_string(), "STATS");
  // The barrier drains every shard before answering.
  EXPECT_GE(stats.at("requests").as_number(), static_cast<double>(kN));
}

TEST(Daemon, ShutdownStopsRunAndReportsCount) {
  DaemonOptions opt;
  opt.shards = 2;
  DaemonHarness h(opt);
  LineClient c(h.port);
  c.send(submit_line(0, 1, 0.0) + "\n" + submit_line(1, 2, 0.0) + "\n" +
         "{\"op\":\"SHUTDOWN\"}\n");
  ASSERT_TRUE(Json::parse(c.recv_line()).at("ok").as_bool());
  ASSERT_TRUE(Json::parse(c.recv_line()).at("ok").as_bool());
  const Json bye = Json::parse(c.recv_line());
  ASSERT_TRUE(bye.at("ok").as_bool());
  EXPECT_EQ(bye.at("op").as_string(), "SHUTDOWN");
  EXPECT_GE(bye.at("requests").as_number(), 2.0);
  h.thread.join();
  EXPECT_EQ(h.rc, 0);
}

TEST(Daemon, ParseOnIngestBaselineStillServes) {
  DaemonOptions opt;
  opt.shards = 2;
  opt.parse_on_shard = false;
  DaemonHarness h(opt);
  LineClient c(h.port);
  c.send(submit_line(0, 1, 0.0) + "\n");
  const Json resp = Json::parse(c.recv_line());
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump(0);
  EXPECT_EQ(resp.at("id").as_number(), 1.0);
}

}  // namespace
}  // namespace sdem::service
