// Tests for the discrete-DVFS-aware common-release solver.
#include <gtest/gtest.h>

#include <cmath>

#include "core/common_release_alpha.hpp"
#include "core/discrete_solver.hpp"
#include "core/discretize.hpp"
#include "sched/energy.hpp"
#include "sched/validate.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

TEST(DiscreteWindow, RaceBranchUsesCheapestLevel) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  const auto ladder = FrequencyLadder::a57_opps();
  const Task t = task(0, 0.0, 1.0, 3.0);  // very loose window
  double hi = 0, lo = 0, t_hi = 0;
  const double e = discrete_window_energy(t, cfg.core, ladder, 1.0, &hi, &lo,
                                          &t_hi);
  EXPECT_EQ(hi, lo);
  // Cheapest level: the one with the lowest energy-per-cycle (closest to
  // s_m ~ 849 in cost — that's 1000 on the A57 ladder; verify by direct
  // comparison).
  double best = 1e18, best_level = 0;
  for (double s : ladder.levels()) {
    const double epc = cfg.core.exec_energy(3.0, s);
    if (epc < best) {
      best = epc;
      best_level = s;
    }
  }
  EXPECT_EQ(hi, best_level);
  expect_near_rel(best, e, 1e-12, "race energy");
}

TEST(DiscreteWindow, TightBranchFillsWithAdjacentPair) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  const auto ladder = FrequencyLadder::a57_opps();
  const Task t = task(0, 0.0, 1.0, 3.0);
  const double window = 3.0 / 1100.0;  // fill speed 1100: between 1000/1200
  double hi = 0, lo = 0, t_hi = 0;
  const double e =
      discrete_window_energy(t, cfg.core, ladder, window, &hi, &lo, &t_hi);
  EXPECT_EQ(lo, 1000.0);
  EXPECT_EQ(hi, 1200.0);
  // Work conservation: hi*t_hi + lo*(window-t_hi) == 3.0.
  expect_near_rel(3.0, hi * t_hi + lo * (window - t_hi), 1e-9, "work");
  EXPECT_GT(e, 0.0);
}

TEST(DiscreteWindow, InfeasibleBeyondTopLevel) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  const auto ladder = FrequencyLadder::a57_opps();
  const Task t = task(0, 0.0, 1.0, 3.0);
  EXPECT_TRUE(std::isinf(
      discrete_window_energy(t, cfg.core, ladder, 3.0 / 2500.0)));
}

TEST(DiscreteSolver, BracketsContinuousAndPostHoc) {
  // continuous optimum <= discrete-aware <= post-hoc discretization.
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.memory.xi_m = 0.0;
  for (int levels : {3, 6, 12}) {
    const auto ladder = FrequencyLadder::uniform(levels, 700.0, 1900.0);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const TaskSet ts = make_common_release(8, 0.0, seed * 97);
      const auto cont = solve_common_release_alpha(ts, cfg);
      const auto aware = solve_common_release_discrete(ts, cfg, ladder);
      ASSERT_TRUE(cont.feasible && aware.feasible);
      const auto posthoc = discretize_schedule(cont.schedule, ladder);
      ASSERT_TRUE(posthoc.feasible);
      const double e_post = system_energy(posthoc.schedule, cfg);
      EXPECT_GE(aware.energy, cont.energy - 1e-9) << levels << " levels";
      EXPECT_LE(aware.energy, e_post + 1e-9) << levels << " levels";
      const auto v = validate_schedule(aware.schedule, ts, cfg);
      EXPECT_TRUE(v.ok) << v.error;
      // Analytic energy equals the schedule's accounted energy.
      expect_near_rel(aware.energy, system_energy(aware.schedule, cfg), 1e-9,
                      "accounting");
    }
  }
}

TEST(DiscreteSolver, DenseLadderConvergesToContinuous) {
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.memory.xi_m = 0.0;
  const TaskSet ts = make_common_release(6, 0.0, 5);
  const auto cont = solve_common_release_alpha(ts, cfg);
  const auto aware = solve_common_release_discrete(
      ts, cfg, FrequencyLadder::uniform(257, 700.0, 1900.0));
  ASSERT_TRUE(cont.feasible && aware.feasible);
  expect_near_rel(cont.energy, aware.energy, 1e-3, "dense ladder");
}

TEST(DiscreteSolver, MatchesBruteForceTinyInstance) {
  // One task, two levels: enumerate the memory end T on a dense grid with
  // the same discrete window cost.
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.memory.xi_m = 0.0;
  const FrequencyLadder ladder({800.0, 1600.0});
  TaskSet ts;
  ts.add(task(0, 0.0, 0.010, 6.0));
  const auto res = solve_common_release_discrete(ts, cfg, ladder);
  ASSERT_TRUE(res.feasible);
  double best = 1e18;
  for (int i = 1; i <= 400000; ++i) {
    const double T = 0.010 * i / 400000.0;
    const double e = cfg.memory.alpha_m * T +
                     discrete_window_energy(ts[0], cfg.core, ladder, T);
    best = std::min(best, e);
  }
  expect_near_rel(best, res.energy, 1e-6, "vs dense T grid");
}

TEST(DiscreteSolver, RejectsOverloaded) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  const FrequencyLadder ladder({700.0, 1000.0});
  TaskSet ts;
  ts.add(task(0, 0.0, 0.001, 3.0));  // needs 3000 MHz
  EXPECT_FALSE(solve_common_release_discrete(ts, cfg, ladder).feasible);
}

}  // namespace
}  // namespace sdem
