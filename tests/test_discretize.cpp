// Tests for the Ishihara-Yasuura discrete-frequency realization.
#include <gtest/gtest.h>

#include <cmath>

#include "core/common_release_alpha.hpp"
#include "core/discretize.hpp"
#include "sched/energy.hpp"
#include "sched/validate.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

TEST(FrequencyLadder, BracketSemantics) {
  const auto l = FrequencyLadder::a57_opps();
  EXPECT_EQ(l.bracket(1000.0), std::make_pair(1000.0, 1000.0));  // exact
  EXPECT_EQ(l.bracket(1100.0), std::make_pair(1000.0, 1200.0));  // interior
  EXPECT_EQ(l.bracket(100.0), std::make_pair(700.0, 700.0));     // below
  EXPECT_EQ(l.bracket(9999.0), std::make_pair(1900.0, 1900.0));  // above
}

TEST(FrequencyLadder, UniformConstruction) {
  const auto l = FrequencyLadder::uniform(4, 400.0, 1000.0);
  ASSERT_EQ(l.levels().size(), 4u);
  EXPECT_DOUBLE_EQ(l.levels()[1], 600.0);
  EXPECT_THROW(FrequencyLadder({}), std::invalid_argument);
  EXPECT_THROW(FrequencyLadder({-1.0}), std::invalid_argument);
}

TEST(Discretize, SplitPreservesWorkAndDuration) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1100.0});  // between 1000 and 1200
  const auto d = discretize_schedule(s, FrequencyLadder::a57_opps());
  EXPECT_TRUE(d.feasible);
  EXPECT_EQ(d.splits, 1);
  ASSERT_EQ(d.schedule.size(), 2u);
  expect_near_rel(1100.0, d.schedule.task_work(0), 1e-12, "work preserved");
  expect_near_rel(1.0, d.schedule.end_time(), 1e-12, "duration preserved");
  // The exact Ishihara-Yasuura weights: t_hi = (1100-1000)/200 = 0.5.
  EXPECT_NEAR(d.schedule.segments()[0].duration(), 0.5, 1e-12);
  EXPECT_NEAR(d.schedule.segments()[0].speed, 1200.0, 1e-12);
}

TEST(Discretize, ExactLevelUntouched) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1200.0});
  const auto d = discretize_schedule(s, FrequencyLadder::a57_opps());
  EXPECT_EQ(d.splits, 0);
  ASSERT_EQ(d.schedule.size(), 1u);
  EXPECT_EQ(d.schedule.segments()[0].speed, 1200.0);
}

TEST(Discretize, BelowBottomRacesAtBottom) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 350.0});
  const auto d = discretize_schedule(s, FrequencyLadder::a57_opps());
  EXPECT_TRUE(d.feasible);
  ASSERT_EQ(d.schedule.size(), 1u);
  EXPECT_EQ(d.schedule.segments()[0].speed, 700.0);
  EXPECT_NEAR(d.schedule.segments()[0].end, 0.5, 1e-12);  // finishes early
  expect_near_rel(350.0, d.schedule.task_work(0), 1e-12, "work preserved");
}

TEST(Discretize, AboveTopIsFlagged) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 2500.0});
  const auto d = discretize_schedule(s, FrequencyLadder::a57_opps());
  EXPECT_FALSE(d.feasible);
}

TEST(Discretize, EnergyPenaltyNonNegativeAndShrinksWithLevels) {
  // Realizing a continuous optimum on a ladder can only cost extra energy
  // (convexity), and denser ladders cost less.
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  const TaskSet ts = make_common_release(8, 0.0, 5);
  const auto cont = solve_common_release_alpha(ts, cfg);
  ASSERT_TRUE(cont.feasible);
  const double base = system_energy(cont.schedule, cfg);
  double prev = 1e18;
  for (int levels : {2, 3, 5, 9, 17, 65}) {
    const auto ladder = FrequencyLadder::uniform(levels, 700.0, 1900.0);
    const auto d = discretize_schedule(cont.schedule, ladder);
    ASSERT_TRUE(d.feasible) << levels << " levels";
    const double e = system_energy(d.schedule, cfg);
    EXPECT_GE(e, base - 1e-9) << levels;
    EXPECT_LE(e, prev + 1e-9) << levels << " levels should not cost more";
    prev = e;
    // Discretized schedule must still be feasible against the tasks.
    const auto v = validate_schedule(d.schedule, ts, cfg);
    EXPECT_TRUE(v.ok) << v.error;
  }
  expect_near_rel(base, prev, 1e-3, "dense ladder converges to continuous");
}

TEST(Discretize, FastFirstDominatesProgress) {
  // The fast sub-segment runs first, so cumulative work at any time is >=
  // the continuous schedule's.
  Schedule s;
  s.add(Segment{0, 0, 0.0, 2.0, 900.0});
  const auto d =
      discretize_schedule(s, FrequencyLadder::uniform(2, 700.0, 1900.0));
  ASSERT_EQ(d.schedule.size(), 2u);
  EXPECT_GT(d.schedule.segments()[0].speed, d.schedule.segments()[1].speed);
}

}  // namespace
}  // namespace sdem
