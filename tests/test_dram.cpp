// Tests for the DRAM power-state machine and its paper-model abstraction.
#include <gtest/gtest.h>

#include "mem/dram.hpp"
#include "sched/energy.hpp"
#include "test_util.hpp"

namespace sdem {
namespace {

using test::make_cfg;

Schedule gap_schedule(double gap) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1000.0});
  s.add(Segment{1, 0, 1.0 + gap, 2.0 + gap, 1000.0});
  return s;
}

TEST(Dram, NoPowerDownBurnsActiveEverywhere) {
  const auto p = DramPowerParams::paper_50nm();
  NoPowerDownPolicy pol;
  const auto r = replay_dram(gap_schedule(1.0), p, pol, 0.0, 3.0);
  EXPECT_NEAR(r.total(), p.p_active * 3.0, 1e-9);
  EXPECT_EQ(r.powerdown_cycles, 0);
  EXPECT_EQ(r.selfrefresh_cycles, 0);
}

TEST(Dram, ImmediatePowerDownUsesShallowState) {
  const auto p = DramPowerParams::paper_50nm();
  ImmediatePowerDownPolicy pol;
  const auto r = replay_dram(gap_schedule(1.0), p, pol, 0.0, 3.0);
  EXPECT_EQ(r.powerdown_cycles, 1);
  EXPECT_NEAR(r.powerdown, p.p_powerdown * 1.0, 1e-9);
  EXPECT_NEAR(r.transition, p.e_powerdown, 1e-12);
}

TEST(Dram, OraclePrefersSelfRefreshOnLongGaps) {
  const auto p = DramPowerParams::paper_50nm();
  OracleDramPolicy pol;
  const auto long_gap = replay_dram(gap_schedule(2.0), p, pol, 0.0, 4.0);
  EXPECT_EQ(long_gap.selfrefresh_cycles, 1);
  // Short gap (1 ms): self refresh's pair energy cannot amortize; power-down
  // can (tiny pair energy, fits easily).
  const auto short_gap = replay_dram(gap_schedule(0.001), p, pol, 0.0, 2.001);
  EXPECT_EQ(short_gap.selfrefresh_cycles, 0);
  EXPECT_EQ(short_gap.powerdown_cycles, 1);
}

TEST(Dram, LatencyGateClampsIllegalChoices) {
  auto p = DramPowerParams::paper_50nm();
  p.t_selfrefresh = 10.0;  // cannot fit any gap here
  OracleDramPolicy pol;
  const auto r = replay_dram(gap_schedule(2.0), p, pol, 0.0, 4.0);
  EXPECT_EQ(r.selfrefresh_cycles, 0);
}

TEST(Dram, OracleNeverWorseThanOtherPolicies) {
  const auto p = DramPowerParams::paper_50nm();
  for (double gap : {1e-7, 1e-4, 0.003, 0.040, 0.5, 5.0}) {
    OracleDramPolicy oracle;
    NoPowerDownPolicy never;
    ImmediatePowerDownPolicy imm;
    const auto sched = gap_schedule(gap);
    const double hi = 2.0 + gap;
    const double e_o = replay_dram(sched, p, oracle, 0.0, hi).total();
    EXPECT_LE(e_o, replay_dram(sched, p, never, 0.0, hi).total() + 1e-12);
    EXPECT_LE(e_o, replay_dram(sched, p, imm, 0.0, hi).total() + 1e-12);
  }
}

TEST(Dram, AbstractionMatchesPaperDefaults) {
  const auto p = DramPowerParams::paper_50nm();
  const auto a = abstraction_for(p);
  EXPECT_NEAR(a.alpha_m, 4.0, 1e-9);   // p_active - p_selfrefresh
  EXPECT_NEAR(a.xi_m, 0.040, 1e-9);    // pair / alpha_m
  EXPECT_NEAR(a.floor_power, 0.25, 1e-12);
}

TEST(Dram, AbstractionTracksTheMachine) {
  // For gaps where self refresh dominates, machine energy equals the
  // abstract accounting plus the constant floor: replay = (alpha_m model
  // with xi_m) + p_floor * horizon, within the shallow-state error.
  const auto p = DramPowerParams::paper_50nm();
  const auto a = abstraction_for(p);
  auto cfg = make_cfg(0.0, a.alpha_m);
  cfg.memory.xi_m = a.xi_m;
  for (double gap : {0.200, 0.500, 1.0}) {  // self refresh dominates here
    const auto sched = gap_schedule(gap);
    const double hi = 2.0 + gap;
    OracleDramPolicy oracle;
    const double machine = replay_dram(sched, p, oracle, 0.0, hi).total();
    EnergyOptions opts;
    opts.horizon_lo = 0.0;
    opts.horizon_hi = hi;
    const double abstract =
        compute_energy(sched, cfg, opts).memory_total() + a.floor_power * hi;
    EXPECT_NEAR(machine, abstract, 0.01 * machine) << "gap " << gap;
  }
  // Mid-length gaps (40..137 ms here) are where the richer ladder beats the
  // two-state abstraction: the oracle drops to power-down, which the
  // abstraction cannot express — machine <= abstraction always.
  for (double gap : {0.001, 0.060, 0.100, 0.200, 2.0}) {
    const auto sched = gap_schedule(gap);
    const double hi = 2.0 + gap;
    OracleDramPolicy oracle;
    const double machine = replay_dram(sched, p, oracle, 0.0, hi).total();
    EnergyOptions opts;
    opts.horizon_lo = 0.0;
    opts.horizon_hi = hi;
    const double abstract =
        compute_energy(sched, cfg, opts).memory_total() + a.floor_power * hi;
    EXPECT_LE(machine, abstract + 1e-9) << "gap " << gap;
  }
}

TEST(Dram, EmptyScheduleSleepsWholeHorizon) {
  const auto p = DramPowerParams::paper_50nm();
  OracleDramPolicy pol;
  const auto r = replay_dram(Schedule{}, p, pol, 0.0, 10.0);
  EXPECT_EQ(r.selfrefresh_cycles, 1);
  EXPECT_NEAR(r.selfrefresh, p.p_selfrefresh * 10.0, 1e-9);
}

TEST(Dram, StateNames) {
  EXPECT_EQ(to_string(DramState::kActive), "active");
  EXPECT_EQ(to_string(DramState::kSelfRefresh), "self-refresh");
}

}  // namespace
}  // namespace sdem
