// Tests for the energy accounting model (sched/energy.hpp).
#include <gtest/gtest.h>

#include "sched/energy.hpp"
#include "test_util.hpp"

namespace sdem {
namespace {

using test::make_cfg;

Schedule gap_schedule() {
  // One core, two bursts with a 1 s gap; memory follows.
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1000.0});
  s.add(Segment{1, 0, 2.0, 3.0, 1000.0});
  return s;
}

TEST(Energy, DynamicEnergyIsBetaS3T) {
  const auto cfg = make_cfg(0.0, 0.0);
  const auto e = compute_energy(gap_schedule(), cfg);
  EXPECT_NEAR(e.core_dynamic, 2.0 * cfg.core.beta * 1e9, 1e-9);
  EXPECT_EQ(e.core_static, 0.0);
  EXPECT_EQ(e.memory_total(), 0.0);
}

TEST(Energy, MemoryActiveTracksBusyUnion) {
  const auto cfg = make_cfg(0.0, 4.0);
  const auto e = compute_energy(gap_schedule(), cfg);
  EXPECT_NEAR(e.memory_active, 4.0 * 2.0, 1e-12);
  // xi_m == 0: the gap sleeps for free.
  EXPECT_EQ(e.memory_idle, 0.0);
  EXPECT_EQ(e.memory_transition, 0.0);
  EXPECT_NEAR(e.memory_sleep_time, 1.0, 1e-12);
}

TEST(Energy, NeverSleepChargesGapAndHorizon) {
  const auto cfg = make_cfg(0.0, 4.0);
  EnergyOptions opts;
  opts.memory_gaps = SleepDiscipline::kNever;
  opts.horizon_lo = 0.0;
  opts.horizon_hi = 5.0;
  const auto e = compute_energy(gap_schedule(), cfg, opts);
  // Busy 2 s active; idle = 1 s interior gap + 2 s trailing.
  EXPECT_NEAR(e.memory_active, 8.0, 1e-12);
  EXPECT_NEAR(e.memory_idle, 4.0 * 3.0, 1e-12);
  EXPECT_EQ(e.memory_sleep_time, 0.0);
}

TEST(Energy, OptimalRespectsBreakEven) {
  auto cfg = make_cfg(0.0, 4.0);
  cfg.memory.xi_m = 2.0;  // gap of 1 s is below break-even: idle through it
  const auto e = compute_energy(gap_schedule(), cfg);
  EXPECT_NEAR(e.memory_idle, 4.0 * 1.0, 1e-12);
  EXPECT_EQ(e.memory_transition, 0.0);

  cfg.memory.xi_m = 0.5;  // now sleeping pays
  const auto e2 = compute_energy(gap_schedule(), cfg);
  EXPECT_EQ(e2.memory_idle, 0.0);
  EXPECT_NEAR(e2.memory_transition, 4.0 * 0.5, 1e-12);
  EXPECT_NEAR(e2.memory_sleep_time, 1.0, 1e-12);
}

TEST(Energy, AlwaysSleepPaysPairEvenForTinyGaps) {
  auto cfg = make_cfg(0.0, 4.0);
  cfg.memory.xi_m = 2.0;
  EnergyOptions opts;
  opts.memory_gaps = SleepDiscipline::kAlways;
  const auto e = compute_energy(gap_schedule(), cfg, opts);
  // The naive sleeper pays a full pair (4 W * 2 s) for a 1 s gap: worse
  // than idling (4 J).
  EXPECT_NEAR(e.memory_transition, 8.0, 1e-12);
  EXPECT_GT(e.memory_total(),
            compute_energy(gap_schedule(), cfg).memory_total());
}

TEST(Energy, BackToBackShortGapsIdleUnderOptimal) {
  // Three bursts with two 0.4 s gaps, each below the 1 s break-even: the
  // optimal discipline idles through both, the naive sleeper pays a full
  // transition pair per gap and loses on each.
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1000.0});
  s.add(Segment{1, 0, 1.4, 2.4, 1000.0});
  s.add(Segment{2, 0, 2.8, 3.8, 1000.0});
  auto cfg = make_cfg(0.0, 4.0);
  cfg.memory.xi_m = 1.0;

  const auto opt = compute_energy(s, cfg);
  EXPECT_NEAR(opt.memory_idle, 4.0 * 0.8, 1e-12);
  EXPECT_EQ(opt.memory_transition, 0.0);
  EXPECT_EQ(opt.memory_sleep_time, 0.0);

  EnergyOptions always;
  always.memory_gaps = SleepDiscipline::kAlways;
  const auto naive = compute_energy(s, cfg, always);
  EXPECT_EQ(naive.memory_idle, 0.0);
  EXPECT_NEAR(naive.memory_transition, 2.0 * 4.0 * 1.0, 1e-12);
  EXPECT_NEAR(naive.memory_sleep_time, 0.8, 1e-12);
  EXPECT_GT(naive.memory_total(), opt.memory_total());
}

TEST(Energy, CoreStaticAndTransitions) {
  auto cfg = make_cfg(0.5, 0.0);
  cfg.core.xi = 0.5;
  const auto e = compute_energy(gap_schedule(), cfg);
  EXPECT_NEAR(e.core_static, 0.5 * 2.0, 1e-12);
  // 1 s gap >= 0.5 s break-even: sleep, one pair at alpha * xi.
  EXPECT_NEAR(e.core_transition, 0.5 * 0.5, 1e-12);
  EXPECT_EQ(e.core_idle, 0.0);
}

TEST(Energy, CoreShortGapIdles) {
  auto cfg = make_cfg(0.5, 0.0);
  cfg.core.xi = 3.0;
  const auto e = compute_energy(gap_schedule(), cfg);
  EXPECT_NEAR(e.core_idle, 0.5 * 1.0, 1e-12);
  EXPECT_EQ(e.core_transition, 0.0);
}

TEST(Energy, PerCoreGapsIndependent) {
  // Two cores with interleaved bursts: memory has no gap, cores do.
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1000.0});
  s.add(Segment{1, 1, 1.0, 2.0, 1000.0});
  s.add(Segment{2, 0, 2.0, 3.0, 1000.0});
  auto cfg = make_cfg(0.5, 4.0);
  cfg.core.xi = 0.1;
  const auto e = compute_energy(s, cfg);
  EXPECT_NEAR(e.memory_active, 4.0 * 3.0, 1e-12);
  EXPECT_EQ(e.memory_transition, 0.0);  // no memory gap at all
  // Core 0 has a 1 s gap: one pair. Core 1 has none.
  EXPECT_NEAR(e.core_transition, 0.5 * 0.1, 1e-12);
}

TEST(Energy, EmptyScheduleUnderHorizon) {
  const auto cfg = make_cfg(0.31, 4.0);
  EnergyOptions opts;
  opts.memory_gaps = SleepDiscipline::kNever;
  opts.horizon_lo = 0.0;
  opts.horizon_hi = 10.0;
  const auto e = compute_energy(Schedule{}, cfg, opts);
  EXPECT_NEAR(e.memory_idle, 40.0, 1e-12);  // always-on memory burns leakage
  EXPECT_EQ(e.core_total(), 0.0);           // no core was ever used
}

TEST(Energy, SystemTotalIsSumOfParts) {
  auto cfg = make_cfg(0.31, 4.0);
  cfg.core.xi = 0.2;
  cfg.memory.xi_m = 0.3;
  const auto e = compute_energy(gap_schedule(), cfg);
  EXPECT_NEAR(e.system_total(), e.core_total() + e.memory_total(), 1e-12);
  EXPECT_NEAR(e.core_total(),
              e.core_dynamic + e.core_static + e.core_idle + e.core_transition,
              1e-12);
}

}  // namespace
}  // namespace sdem
