// Figure-shape tests: the paper's qualitative evaluation claims, asserted
// (small versions of the bench sweeps — the benches print the full tables,
// these keep the shapes from regressing).
#include <gtest/gtest.h>

#include <vector>

#include "sim/metrics.hpp"
#include "workload/dspstone.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

SystemConfig paper_cfg() { return SystemConfig::paper_default(); }

double dspstone_saving(double u, bool memory_only, bool mbkps,
                       int seeds = 4) {
  double acc = 0.0;
  for (int s = 1; s <= seeds; ++s) {
    DspstoneParams p;
    p.num_tasks = 120;
    p.utilization_u = u;
    const auto cmp = run_comparison(make_dspstone(p, s * 977), paper_cfg());
    if (memory_only) {
      acc += mbkps ? cmp.memory_saving_mbkps() : cmp.memory_saving_sdem();
    } else {
      acc += mbkps ? cmp.system_saving_mbkps() : cmp.system_saving_sdem();
    }
  }
  return acc / seeds;
}

TEST(Fig6aShape, SdemAboveMbkpsAtEveryU) {
  for (double u : {2.0, 5.0, 9.0}) {
    EXPECT_GT(dspstone_saving(u, true, false),
              dspstone_saving(u, true, true) - 1e-9)
        << "U " << u;
  }
}

TEST(Fig6aShape, MemorySavingGrowsAsSystemIdles) {
  EXPECT_LT(dspstone_saving(2.0, true, false),
            dspstone_saving(9.0, true, false));
}

TEST(Fig6bShape, MbkpsDegeneratesToMbkpWhenBusy) {
  // "MBKPS can barely idle the memory" at U = 2.
  EXPECT_LT(dspstone_saving(2.0, false, true), 0.08);
  EXPECT_GT(dspstone_saving(9.0, false, true), 0.15);
}

TEST(Fig6bShape, SdemEdgePeaksAwayFromIdle) {
  // The SDEM-ON - MBKPS gap at mid utilization exceeds the gap when idle.
  const double gap_mid = dspstone_saving(4.0, false, false) -
                         dspstone_saving(4.0, false, true);
  const double gap_idle = dspstone_saving(9.0, false, false) -
                          dspstone_saving(9.0, false, true);
  EXPECT_GT(gap_mid, gap_idle);
  EXPECT_GT(gap_idle, 0.0);
}

TEST(Fig7Shape, ImprovementPositiveAcrossTheGrid) {
  for (double x : {0.100, 0.400, 0.800}) {
    for (double alpha_m : {1.0, 8.0}) {
      auto cfg = paper_cfg();
      cfg.memory.alpha_m = alpha_m;
      double improvement = 0.0;
      for (int s = 1; s <= 4; ++s) {
        SyntheticParams p;
        p.num_tasks = 100;
        p.max_interarrival = x;
        improvement +=
            run_comparison(make_synthetic(p, s * 31), cfg).improvement();
      }
      EXPECT_GT(improvement / 4, -0.002)
          << "x " << x << " alpha_m " << alpha_m;
    }
  }
}

TEST(Fig7bShape, ImprovementRoughlyFlatInXim) {
  // "basically no difference with the varying of break-even time" at the
  // default x.
  std::vector<double> imp;
  for (double xim : {0.015, 0.040, 0.070}) {
    auto cfg = paper_cfg();
    cfg.memory.xi_m = xim;
    double acc = 0.0;
    for (int s = 1; s <= 4; ++s) {
      SyntheticParams p;
      p.num_tasks = 100;
      p.max_interarrival = 0.400;
      acc += run_comparison(make_synthetic(p, s * 53), cfg).improvement();
    }
    imp.push_back(acc / 4);
  }
  for (double v : imp) {
    EXPECT_NEAR(v, imp[0], 0.03) << "flat within 3 pp";
  }
}

}  // namespace
}  // namespace sdem
