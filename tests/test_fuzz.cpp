// Tests for the differential-fuzzing subsystem (src/testing/): generator
// determinism and class validity, the invariant checker on known-good and
// known-bad cases, signature-preserving shrinking, and the .repro.json
// round trip. The fuzzer itself runs as the fuzz_smoke / fuzz_corpus_replay
// ctest targets and in CI; these tests pin the machinery it stands on.
#include <gtest/gtest.h>

#include <sstream>

#include "testing/fuzz_driver.hpp"
#include "testing/generators.hpp"
#include "testing/invariants.hpp"
#include "testing/repro_io.hpp"
#include "testing/shrink.hpp"
#include "test_util.hpp"

namespace sdem {
namespace {

// Keep the unit tests fast: the grid-reference oracles are the fuzzer's
// job, not this binary's.
sdem::testing::CheckOptions fast_opts() {
  sdem::testing::CheckOptions opts;
  opts.run_reference = false;
  return opts;
}

TEST(FuzzCase, ModelClassNamesRoundTrip) {
  using sdem::testing::ModelClass;
  for (ModelClass m : {ModelClass::kCommonRelease, ModelClass::kAgreeable,
                       ModelClass::kGeneral}) {
    EXPECT_EQ(sdem::testing::model_class_from_string(
                  sdem::testing::to_string(m)),
              m);
  }
  EXPECT_THROW(sdem::testing::model_class_from_string("bogus"),
               std::invalid_argument);
}

TEST(FuzzGenerators, SameSeedSameCase) {
  using sdem::testing::ModelClass;
  for (ModelClass m : {ModelClass::kCommonRelease, ModelClass::kAgreeable,
                       ModelClass::kGeneral}) {
    const auto a = sdem::testing::generate_case(m, 42);
    const auto b = sdem::testing::generate_case(m, 42);
    EXPECT_EQ(sdem::testing::repro_to_json(a),
              sdem::testing::repro_to_json(b));
    const auto c = sdem::testing::generate_case(m, 43);
    EXPECT_NE(sdem::testing::repro_to_json(a),
              sdem::testing::repro_to_json(c));
  }
}

TEST(FuzzGenerators, CasesAreStructurallyValid) {
  using sdem::testing::ModelClass;
  for (ModelClass m : {ModelClass::kCommonRelease, ModelClass::kAgreeable,
                       ModelClass::kGeneral}) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      const auto c = sdem::testing::generate_case(m, seed);
      ASSERT_FALSE(c.tasks.empty());
      EXPECT_TRUE(c.tasks.validate().empty()) << c.tasks.validate();
      if (m == ModelClass::kCommonRelease) {
        EXPECT_TRUE(c.tasks.is_common_release());
      }
      if (m == ModelClass::kAgreeable) {
        EXPECT_TRUE(c.tasks.is_agreeable());
      }
      if (c.cfg.core.s_up > 0.0) {
        EXPECT_LE(c.tasks.max_filled_speed(),
                  c.cfg.core.s_up * (1.0 + 1e-12));
      }
    }
  }
}

TEST(FuzzInvariants, SmallSeedsAreClean) {
  using sdem::testing::ModelClass;
  const auto opts = fast_opts();
  for (ModelClass m : {ModelClass::kCommonRelease, ModelClass::kAgreeable,
                       ModelClass::kGeneral}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto c = sdem::testing::generate_case(m, seed);
      const auto violations = sdem::testing::check_case(c, opts);
      EXPECT_TRUE(violations.empty())
          << sdem::testing::to_string(m) << " seed " << seed << ": "
          << sdem::testing::summarize(violations);
    }
  }
}

TEST(FuzzInvariants, FlagsOutOfClassCases) {
  // A case tagged agreeable whose windows cross must fail class checking
  // without running any solver.
  sdem::testing::FuzzCase c;
  c.model = sdem::testing::ModelClass::kAgreeable;
  c.cfg = test::make_cfg(0.0, 4.0);
  TaskSet ts;
  ts.add(test::task(0, 0.0, 5.0, 10.0));
  ts.add(test::task(1, 1.0, 2.0, 10.0));  // earlier deadline, later release
  c.tasks = ts;
  const auto violations = sdem::testing::check_case(c, fast_opts());
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().invariant, "class:model");
}

TEST(FuzzShrink, ReducesToMinimalFailingCase) {
  // A negative ordering tolerance makes the lower-bound comparison fail for
  // every structurally valid case, so the shrinker should drive any case
  // down to a single task while the signature keeps overlapping.
  auto opts = fast_opts();
  opts.order_tol = -1.0;
  const auto c = sdem::testing::generate_case(
      sdem::testing::ModelClass::kCommonRelease, 11);
  ASSERT_GE(c.tasks.size(), 2u);
  ASSERT_FALSE(sdem::testing::check_case(c, opts).empty());

  const auto r = sdem::testing::shrink_case(c, opts, 300);
  EXPECT_EQ(r.reduced.tasks.size(), 1u);
  EXPECT_GT(r.attempts, 0);
  EXPECT_GT(r.accepted, 0);
  ASSERT_FALSE(r.violations.empty());
  bool kept_signature = false;
  for (const auto& v : r.violations) {
    kept_signature |= v.invariant.rfind("order:", 0) == 0;
  }
  EXPECT_TRUE(kept_signature);
}

TEST(FuzzShrink, CleanCaseIsUntouched) {
  const auto c = sdem::testing::generate_case(
      sdem::testing::ModelClass::kCommonRelease, 3);
  const auto r = sdem::testing::shrink_case(c, fast_opts(), 100);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.reduced.tasks.size(), c.tasks.size());
  EXPECT_EQ(r.accepted, 0);
}

TEST(FuzzRepro, JsonRoundTripIsExact) {
  using sdem::testing::ModelClass;
  for (ModelClass m : {ModelClass::kCommonRelease, ModelClass::kAgreeable,
                       ModelClass::kGeneral}) {
    const auto c = sdem::testing::generate_case(m, 99);
    const std::string text = sdem::testing::repro_to_json(c);
    const auto back = sdem::testing::repro_from_json(text);
    // Bit-exact doubles: re-serialization reproduces the same bytes.
    EXPECT_EQ(sdem::testing::repro_to_json(back), text);
    EXPECT_EQ(back.model, c.model);
    EXPECT_EQ(back.seed, c.seed);
    EXPECT_EQ(back.tasks.size(), c.tasks.size());
    EXPECT_EQ(back.ladder, c.ladder);
  }
}

TEST(FuzzRepro, RejectsMalformedDocuments) {
  EXPECT_THROW(sdem::testing::repro_from_json("not json"),
               std::invalid_argument);
  EXPECT_THROW(sdem::testing::repro_from_json("{}"), std::invalid_argument);
  EXPECT_THROW(
      sdem::testing::repro_from_json(
          R"({"sdem_repro": 1, "model": "common_release", "tasks": 3})"),
      std::invalid_argument);
}

TEST(FuzzRepro, TestBodyNamesTheCase) {
  const auto c = sdem::testing::generate_case(
      sdem::testing::ModelClass::kAgreeable, 5);
  const std::string body =
      sdem::testing::repro_test_body(c, "AgreeableSeed5");
  EXPECT_NE(body.find("TEST(FuzzRegression, AgreeableSeed5)"),
            std::string::npos);
  EXPECT_NE(body.find("sdem::testing::ModelClass::kAgreeable"),
            std::string::npos);
  EXPECT_NE(body.find("sdem::testing::check_case"), std::string::npos);
  // One ts.add per task.
  std::size_t adds = 0;
  for (std::size_t pos = body.find("ts.add("); pos != std::string::npos;
       pos = body.find("ts.add(", pos + 1)) {
    ++adds;
  }
  EXPECT_EQ(adds, c.tasks.size());
}

TEST(FuzzDriver, RunIsDeterministicAndBudgeted) {
  sdem::testing::FuzzOptions opts;
  opts.seed = 7;
  opts.cases = 3;
  opts.quiet = true;
  opts.check = fast_opts();
  std::ostringstream log1, log2;
  const auto r1 = sdem::testing::run_fuzz(opts, log1);
  const auto r2 = sdem::testing::run_fuzz(opts, log2);
  EXPECT_EQ(r1.cases_run, 12);  // 3 per model class
  EXPECT_EQ(r1.cases_per_model[0], 3);
  EXPECT_EQ(r1.cases_per_model[1], 3);
  EXPECT_EQ(r1.cases_per_model[2], 3);
  EXPECT_EQ(r1.cases_per_model[3], 3);
  EXPECT_TRUE(r1.clean()) << log1.str();
  EXPECT_EQ(r1.cases_run, r2.cases_run);
  EXPECT_EQ(log1.str(), log2.str());
}

TEST(FuzzDriver, ReplayCatchesMissingFile) {
  std::ostringstream log;
  EXPECT_FALSE(sdem::testing::replay_repro("/nonexistent/x.repro.json",
                                           fast_opts(), log));
  EXPECT_NE(log.str().find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace sdem
