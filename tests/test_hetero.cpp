// Tests for the heterogeneous-core common-release scheme.
#include <gtest/gtest.h>

#include <cmath>

#include "core/block.hpp"
#include "core/common_release_alpha.hpp"
#include "core/common_release_hetero.hpp"
#include "core/reference.hpp"
#include "sched/energy.hpp"
#include "sched/validate.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

CorePower big_core() {
  CorePower c;
  c.alpha = 0.31;
  c.beta = 2.53e-10;
  c.lambda = 3.0;
  c.s_up = 1900.0;
  return c;
}

CorePower little_core() {
  // A53-like: much less static power, a bit more dynamic per MHz^3, lower
  // top frequency.
  CorePower c;
  c.alpha = 0.06;
  c.beta = 4.0e-10;
  c.lambda = 3.0;
  c.s_up = 1300.0;
  return c;
}

TEST(Hetero, HomogeneousSpecialCaseMatchesSection4) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TaskSet ts = make_common_release(1 + seed % 7, 0.0, seed * 19);
    std::vector<CorePower> cores(ts.size(), cfg.core);
    const auto het = solve_common_release_hetero(ts, cores, cfg.memory);
    const auto hom = solve_common_release_alpha(ts, cfg);
    ASSERT_TRUE(het.feasible && hom.feasible) << "seed " << seed;
    expect_near_rel(hom.energy, het.energy, 1e-6, "hetero == homo");
  }
}

TEST(Hetero, BigLittleSchedulesAreFeasible) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = make_common_release(6, 0.0, seed * 7);
    std::vector<CorePower> cores;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      cores.push_back(i % 2 ? little_core() : big_core());
    }
    MemoryPower mem{4.0, 0.0};
    const auto res = solve_common_release_hetero(ts, cores, mem);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    // Validate manually: per-task window containment and speed bound
    // against each task's own core.
    for (const auto& seg : res.schedule.segments()) {
      const auto& core = cores[seg.core];
      EXPECT_LE(seg.speed, core.max_speed() * (1.0 + 1e-6));
      EXPECT_LE(seg.end, ts[seg.core].deadline + 1e-9);
      expect_near_rel(ts[seg.core].work, seg.work(), 1e-9, "work done");
    }
  }
}

TEST(Hetero, MatchesDenseGridReference) {
  // Independent check: dense search over the memory busy end with per-task
  // window-optimal energies.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskSet ts = make_common_release(5, 0.0, seed * 43);
    std::vector<CorePower> cores;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      cores.push_back(i % 2 ? little_core() : big_core());
    }
    MemoryPower mem{4.0, 0.0};
    const auto res = solve_common_release_hetero(ts, cores, mem);
    ASSERT_TRUE(res.feasible);

    double best = 1e300;
    const double horizon = ts.max_deadline();
    for (int i = 1; i <= 200000; ++i) {
      const double T = horizon * i / 200000.0;
      double e = mem.alpha_m * T;
      for (std::size_t k = 0; k < ts.size(); ++k) {
        e += task_window_energy(ts[k], cores[k],
                                std::min(T, ts[k].deadline));
        if (!std::isfinite(e)) break;
      }
      best = std::min(best, e);
    }
    expect_near_rel(best, res.energy, 5e-5, "vs dense grid");  // grid step
  }
}

TEST(Hetero, LittleCoresPreferLowerSpeeds) {
  // Same task on a big vs little core: the little core's lower alpha gives
  // it a lower critical speed.
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 3.0));
  MemoryPower mem{0.0, 0.0};  // isolate the core effect
  const auto on_big =
      solve_common_release_hetero(ts, {big_core()}, mem);
  const auto on_little =
      solve_common_release_hetero(ts, {little_core()}, mem);
  ASSERT_TRUE(on_big.feasible && on_little.feasible);
  EXPECT_LT(on_little.schedule.segments()[0].speed,
            on_big.schedule.segments()[0].speed);
}

TEST(Hetero, RejectsMismatchedSizes) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 1.0));
  ts.add(task(1, 0.0, 1.0, 1.0));
  MemoryPower mem{4.0, 0.0};
  EXPECT_FALSE(solve_common_release_hetero(ts, {big_core()}, mem).feasible);
}

}  // namespace
}  // namespace sdem
