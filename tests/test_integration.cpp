// End-to-end integration tests: full pipelines under the paper's default
// configuration, crossing module boundaries.
#include <gtest/gtest.h>

#include "core/agreeable.hpp"
#include "core/common_release_alpha.hpp"
#include "core/online_sdem.hpp"
#include "core/reference.hpp"
#include "sched/energy.hpp"
#include "sched/validate.hpp"
#include "sim/metrics.hpp"
#include "test_util.hpp"
#include "workload/dspstone.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;

SystemConfig paper_cfg() {
  auto cfg = SystemConfig::paper_default();
  cfg.core.s_min = 0.0;
  return cfg;
}

TEST(Integration, OfflinePipelineCommonRelease) {
  // Generate -> solve -> validate -> account, all under paper defaults
  // (ignoring transition overheads for the Section 4 scheme).
  auto cfg = paper_cfg();
  cfg.memory.xi_m = 0.0;
  cfg.num_cores = 0;
  const TaskSet ts = make_common_release(16, 0.0, 2024);
  const auto res = solve_common_release_alpha(ts, cfg);
  ASSERT_TRUE(res.feasible);
  const auto v = validate_schedule(res.schedule, ts, cfg);
  ASSERT_TRUE(v.ok) << v.error;
  const auto e = compute_energy(res.schedule, cfg);
  expect_near_rel(res.energy, e.system_total(), 1e-9, "energy agreement");
  const double ref = reference_common_release(ts, cfg);
  expect_near_rel(ref, res.energy, 1e-6, "optimality");
}

TEST(Integration, OfflinePipelineAgreeable) {
  auto cfg = paper_cfg();
  cfg.memory.xi_m = 0.0;
  cfg.num_cores = 0;
  const TaskSet ts = make_agreeable(8, 555, 0.100);
  const auto res = solve_agreeable(ts, cfg);
  ASSERT_TRUE(res.feasible);
  const auto v = validate_schedule(res.schedule, ts, cfg);
  ASSERT_TRUE(v.ok) << v.error;
  const double ref = reference_agreeable(ts, cfg);
  expect_near_rel(ref, res.energy, 1e-5, "optimality");
}

TEST(Integration, OnlineOfflineConsistency) {
  // A burst of simultaneous arrivals with no later tasks: SDEM-ON's single
  // replan is the offline common-release optimum, so the realized system
  // energy (with the same accounting) matches it closely.
  auto cfg = paper_cfg();
  cfg.memory.xi_m = 0.0;
  cfg.num_cores = 0;  // unbounded: each task its own core
  const TaskSet ts = make_common_release(8, 0.0, 31);
  SdemOnPolicy pol;
  const auto sim = simulate(ts, cfg, pol);
  EXPECT_EQ(sim.deadline_misses, 0);
  const auto offline = solve_common_release_alpha(ts, cfg);
  EnergyOptions opts;  // same horizon-free accounting as the offline scheme
  const auto e = compute_energy(sim.schedule, cfg, opts);
  // The online run procrastinates (shifts right) but the busy-interval
  // structure and speeds are the offline optimum's.
  expect_near_rel(offline.energy, e.system_total(), 1e-6,
                  "online burst = offline optimum");
}

TEST(Integration, FullComparisonOrderingHolds) {
  // SDEM-ON <= MBKPS <= MBKP in system energy on both workload families.
  auto cfg = paper_cfg();
  {
    SyntheticParams p;
    p.num_tasks = 120;
    p.max_interarrival = 0.400;
    const auto cmp = run_comparison(make_synthetic(p, 1), cfg);
    EXPECT_LE(cmp.mbkps.energy.system_total(),
              cmp.mbkp.energy.system_total() + 1e-9);
    EXPECT_LE(cmp.sdem.energy.system_total(),
              cmp.mbkps.energy.system_total() * 1.02);
  }
  {
    DspstoneParams p;
    p.num_tasks = 120;
    p.utilization_u = 5.0;
    const auto cmp = run_comparison(make_dspstone(p, 1), cfg);
    EXPECT_LE(cmp.mbkps.energy.system_total(),
              cmp.mbkp.energy.system_total() + 1e-9);
  }
}

TEST(Integration, EnergyBreakdownComponentsConsistent) {
  auto cfg = paper_cfg();
  SyntheticParams p;
  p.num_tasks = 60;
  p.max_interarrival = 0.300;
  const auto cmp = run_comparison(make_synthetic(p, 8), cfg);
  for (const auto* ev : {&cmp.mbkp, &cmp.mbkps, &cmp.sdem}) {
    EXPECT_GT(ev->energy.core_dynamic, 0.0) << ev->policy;
    EXPECT_GT(ev->energy.memory_total(), 0.0) << ev->policy;
    EXPECT_NEAR(ev->energy.system_total(),
                ev->energy.core_total() + ev->energy.memory_total(), 1e-9)
        << ev->policy;
  }
  // MBKP burns memory leakage across the whole horizon.
  const double horizon = cmp.mbkp.energy.memory_total() / cfg.memory.alpha_m;
  EXPECT_GT(horizon, 0.0);
}

}  // namespace
}  // namespace sdem
