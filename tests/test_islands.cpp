// Tests for the voltage-island extension.
#include <gtest/gtest.h>

#include <cmath>

#include "core/common_release_alpha.hpp"
#include "core/islands.hpp"
#include "sched/validate.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

std::vector<int> singleton_assignment(std::size_t n) {
  std::vector<int> a(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = static_cast<int>(i);
  return a;
}

TEST(Islands, SingletonIslandsRecoverSection42) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = make_common_release(1 + seed % 6, 0.0, seed * 3);
    const auto isl = solve_common_release_islands(
        ts, cfg, singleton_assignment(ts.size()));
    const auto ref = solve_common_release_alpha(ts, cfg);
    ASSERT_TRUE(isl.feasible && ref.feasible) << "seed " << seed;
    expect_near_rel(ref.energy, isl.energy, 1e-6, "singletons == Section 4.2");
  }
}

TEST(Islands, SharedRailNeverBeatsIndividualRails) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = make_common_release(8, 0.0, seed * 13);
    const auto fine = solve_common_release_islands(
        ts, cfg, singleton_assignment(ts.size()));
    const auto coarse = solve_common_release_islands(
        ts, cfg, std::vector<int>(ts.size(), 0));
    ASSERT_TRUE(fine.feasible && coarse.feasible);
    EXPECT_GE(coarse.energy, fine.energy - 1e-9) << "seed " << seed;
  }
}

TEST(Islands, OneIslandClosedForm) {
  // Single island, memory free, loose deadlines: the rail runs at s_m and
  // the energy is (beta s_m^3 + alpha) * W / s_m.
  auto cfg = make_cfg(0.31, 0.0, 0.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 10.0, 2.0));
  ts.add(task(1, 0.0, 10.0, 5.0));
  const auto res =
      solve_common_release_islands(ts, cfg, std::vector<int>{0, 0});
  ASSERT_TRUE(res.feasible);
  const double s_m = cfg.core.critical_speed_raw();
  expect_near_rel(cfg.core.exec_energy(7.0, s_m), res.energy, 1e-9,
                  "island at s_m");
  for (const auto& seg : res.schedule.segments()) {
    expect_near_rel(s_m, seg.speed, 1e-9, "shared rail speed");
  }
}

TEST(Islands, MembersShareOneSpeed) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  const TaskSet ts = make_common_release(6, 0.0, 77);
  const auto res = solve_common_release_islands(
      ts, cfg, std::vector<int>{0, 0, 0, 1, 1, 1});
  ASSERT_TRUE(res.feasible);
  std::map<int, double> island_speed;  // first core of each island
  const auto& segs = res.schedule.segments();
  for (std::size_t i = 1; i < 3; ++i) {
    expect_near_rel(segs[0].speed, segs[i].speed, 1e-12, "island 0 shared");
  }
  for (std::size_t i = 4; i < 6; ++i) {
    expect_near_rel(segs[3].speed, segs[i].speed, 1e-12, "island 1 shared");
  }
}

TEST(Islands, SchedulesAreFeasible) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = make_common_release(9, 0.0, seed * 5);
    const auto assignment = assign_islands_similar_speed(ts, 3);
    const auto res = solve_common_release_islands(ts, cfg, assignment);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    const auto v = validate_schedule(res.schedule, ts, cfg);
    EXPECT_TRUE(v.ok) << v.error << " seed " << seed;
  }
}

TEST(Islands, SimilarSpeedAssignmentBeatsAdversarial) {
  // Pairing steep with shallow tasks wastes the shared rail; the heuristic
  // should beat the worst interleaved assignment on average.
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  double good = 0.0, bad = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    TaskSet ts;
    // Four steep (tight) and four shallow (loose) tasks.
    for (int i = 0; i < 4; ++i) ts.add(task(i, 0.0, 0.004, 4.0));
    for (int i = 4; i < 8; ++i) ts.add(task(i, 0.0, 0.500, 2.0 + 0.1 * i));
    const auto similar = assign_islands_similar_speed(ts, 2);
    const std::vector<int> interleaved{0, 1, 0, 1, 0, 1, 0, 1};
    const auto g = solve_common_release_islands(ts, cfg, similar);
    const auto b = solve_common_release_islands(ts, cfg, interleaved);
    ASSERT_TRUE(g.feasible && b.feasible);
    good += g.energy;
    bad += b.energy;
  }
  EXPECT_LT(good, bad);
}

TEST(Islands, AssignmentHelperShape) {
  const TaskSet ts = make_common_release(10, 0.0, 3);
  const auto a = assign_islands_similar_speed(ts, 3);
  ASSERT_EQ(a.size(), 10u);
  for (int v : a) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 3);
  }
}

TEST(Islands, RejectsBadInput) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 1.0));
  EXPECT_FALSE(solve_common_release_islands(ts, cfg, {}).feasible);
  EXPECT_FALSE(solve_common_release_islands(ts, cfg, {-1}).feasible);
}

}  // namespace
}  // namespace sdem
