// support/json.hpp: the runner's JSON writer. What matters for
// BENCH_<name>.json: deterministic bytes (insertion-ordered keys, fixed
// number rule), lossless doubles, correct escaping.
#include "support/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

namespace sdem {
namespace {

TEST(Json, ScalarsRender) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(std::string("hi")).dump(), "\"hi\"");
}

TEST(Json, IntegralDoublesPrintBare) {
  EXPECT_EQ(Json(8.0).dump(), "8");
  EXPECT_EQ(Json(-3.0).dump(), "-3");
  EXPECT_EQ(Json(0.0).dump(), "0");
  EXPECT_EQ(Json(1e12).dump(), "1000000000000");
}

TEST(Json, DoublesRoundTripExactly) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           2.5307e-10,
                           -123.456789012345678,
                           std::numeric_limits<double>::denorm_min(),
                           6.62607015e-34,
                           0.30000000000000004};
  for (double v : values) {
    const std::string s = Json::number_to_string(v);
    double back = 0.0;
    ASSERT_EQ(std::sscanf(s.c_str(), "%lf", &back), 1) << s;
    EXPECT_EQ(back, v) << s;
  }
}

TEST(Json, NonFiniteRendersNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Json(std::string("ctrl\x01")).dump(), "\"ctrl\\u0001\"");
  // UTF-8 passes through untouched.
  EXPECT_EQ(Json("\xc3\xa9").dump(), "\"\xc3\xa9\"");
}

TEST(Json, ObjectKeepsInsertionOrderAndOverwrites) {
  Json o = Json::object();
  o.set("z", 1);
  o.set("a", 2);
  o.set("m", 3);
  EXPECT_EQ(o.dump(), "{\"z\": 1, \"a\": 2, \"m\": 3}");
  o.set("a", 9);  // overwrite keeps the original position
  EXPECT_EQ(o.dump(), "{\"z\": 1, \"a\": 9, \"m\": 3}");
  EXPECT_EQ(o.size(), 3u);
}

TEST(Json, ArraysAndNesting) {
  Json arr = Json::array();
  arr.push_back(1);
  Json inner = Json::object();
  inner.set("k", "v");
  arr.push_back(std::move(inner));
  EXPECT_EQ(arr.dump(), "[1, {\"k\": \"v\"}]");
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(), "{}");
}

TEST(Json, NullPromotesOnFirstUse) {
  Json a;  // null
  a.push_back(1);
  EXPECT_EQ(a.kind(), Json::Kind::kArray);
  Json o;  // null
  o.set("k", 1);
  EXPECT_EQ(o.kind(), Json::Kind::kObject);
  EXPECT_THROW(a.set("k", 1), std::logic_error);
  EXPECT_THROW(o.push_back(1), std::logic_error);
}

TEST(Json, PrettyPrintIsStable) {
  Json doc = Json::object();
  doc.set("name", "fig6a");
  Json rows = Json::array();
  Json row = Json::object();
  row.set("u", 2);
  row.set("saving", 0.105625);
  rows.push_back(std::move(row));
  doc.set("rows", std::move(rows));
  EXPECT_EQ(doc.dump(2),
            "{\n"
            "  \"name\": \"fig6a\",\n"
            "  \"rows\": [\n"
            "    {\n"
            "      \"u\": 2,\n"
            "      \"saving\": 0.105625\n"
            "    }\n"
            "  ]\n"
            "}\n");
  // Identical documents produce identical bytes (what the determinism
  // acceptance check diffs).
  Json doc2 = Json::object();
  doc2.set("name", "fig6a");
  Json rows2 = Json::array();
  Json row2 = Json::object();
  row2.set("u", 2);
  row2.set("saving", 0.105625);
  rows2.push_back(std::move(row2));
  doc2.set("rows", std::move(rows2));
  EXPECT_EQ(doc.dump(2), doc2.dump(2));
}

TEST(Json, WithoutKeyStripsRecursively) {
  Json doc = Json::object();
  doc.set("keep", 1);
  doc.set("solver_seconds", 0.5);
  Json arr = Json::array();
  Json row = Json::object();
  row.set("solver_seconds", 0.25);
  row.set("value", 2);
  arr.push_back(std::move(row));
  doc.set("rows", std::move(arr));
  const Json stripped = doc.without_key("solver_seconds");
  EXPECT_EQ(stripped.dump(),
            "{\"keep\": 1, \"rows\": [{\"value\": 2}]}");
  // The original is untouched.
  EXPECT_NE(doc.dump().find("solver_seconds"), std::string::npos);
}

TEST(JsonParse, ScalarsAndContainers) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_EQ(Json::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");

  const Json arr = Json::parse("[1, 2, 3]");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.at(2).as_number(), 3.0);

  const Json obj = Json::parse(R"({"a": 1, "b": {"c": [true]}})");
  ASSERT_TRUE(obj.is_object());
  EXPECT_TRUE(obj.has("a"));
  EXPECT_FALSE(obj.has("z"));
  EXPECT_EQ(obj.at("b").at("c").at(0).as_bool(), true);
  EXPECT_EQ(obj.number_or("a", -1.0), 1.0);
  EXPECT_EQ(obj.number_or("z", -1.0), -1.0);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\n\t")").as_string(), "a\"b\\c\n\t");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
}

TEST(JsonParse, WriterOutputRoundTrips) {
  Json doc = Json::object();
  doc.set("pi", 3.141592653589793);
  doc.set("tiny", 2.53e-10);
  doc.set("neg", -0.1);
  Json arr = Json::array();
  arr.push_back(1e308);
  arr.push_back(std::string("x \"quoted\""));
  doc.set("arr", std::move(arr));
  const std::string text = doc.dump(2);
  const Json back = Json::parse(text);
  // Shortest-round-trip rendering + strtod parsing: bytes are stable.
  EXPECT_EQ(back.dump(2), text);
  EXPECT_EQ(back.at("pi").as_number(), 3.141592653589793);
  EXPECT_EQ(back.at("tiny").as_number(), 2.53e-10);
}

TEST(JsonParse, MalformedInputThrowsWithOffset) {
  EXPECT_THROW(Json::parse(""), std::invalid_argument);
  EXPECT_THROW(Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1, ]"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(Json::parse("tru"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1 2"), std::invalid_argument);  // trailing junk
  try {
    Json::parse("[1, oops]");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(JsonParse, TypeMismatchesThrow) {
  const Json n = Json::parse("3");
  EXPECT_THROW(n.as_string(), std::logic_error);
  EXPECT_THROW(n.at("k"), std::logic_error);
  const Json obj = Json::parse("{}");
  EXPECT_THROW(obj.at("missing"), std::logic_error);
}

}  // namespace
}  // namespace sdem
