// Tests that the literal Lemma 3 bisection solver agrees with the other
// two Section 5.1 implementations (direct convex optimizer, grid reference).
#include <gtest/gtest.h>

#include <cmath>

#include "core/lemma3.hpp"
#include "core/reference.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

TEST(Lemma3, SingleTaskInteriorOptimum) {
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  std::vector<Task> ts{task(0, 0.0, 0.100, 3.0)};
  const auto l3 = solve_block_lemma3(ts, cfg);
  const auto direct = solve_block(ts, cfg);
  ASSERT_TRUE(l3.feasible && direct.feasible);
  expect_near_rel(direct.energy, l3.energy, 1e-9, "single task");
}

TEST(Lemma3, AgreesWithDirectOptimizerRandom) {
  const auto cfg = make_cfg(0.0, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const TaskSet ts = make_agreeable(2 + seed % 5, seed * 3, 0.050);
    const auto sorted = ts.sorted_by_deadline().tasks();
    const auto l3 = solve_block_lemma3(sorted, cfg);
    const auto direct = solve_block(sorted, cfg);
    ASSERT_TRUE(direct.feasible) << "seed " << seed;
    ASSERT_TRUE(l3.feasible) << "seed " << seed;
    expect_near_rel(direct.energy, l3.energy, 1e-6, "seed block");
  }
}

TEST(Lemma3, AgreesWithGridReference) {
  const auto cfg = make_cfg(0.0, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TaskSet ts = make_agreeable(3 + seed % 3, seed * 17, 0.040);
    const auto sorted = ts.sorted_by_deadline().tasks();
    const auto l3 = solve_block_lemma3(sorted, cfg);
    ASSERT_TRUE(l3.feasible);
    const double ref = reference_block(sorted, cfg);
    expect_near_rel(ref, l3.energy, 1e-5, "vs reference");
  }
}

TEST(Lemma3, StationarityConditionHoldsAtInteriorOptimum) {
  // At an interior optimum the paper's first-order condition must hold:
  // sum_L (w / (d - s'))^lambda == alpha_m / (beta (lambda - 1)).
  const auto cfg = make_cfg(0.0, 4.0, 0.0);
  std::vector<Task> ts{task(0, 0.0, 0.080, 3.0), task(1, 0.010, 0.090, 3.0)};
  const auto l3 = solve_block_lemma3(ts, cfg);
  ASSERT_TRUE(l3.feasible);
  const double target =
      cfg.memory.alpha_m / (cfg.core.beta * (cfg.core.lambda - 1.0));
  double lhs = 0.0;
  for (const auto& t : ts) {
    if (t.release < l3.s - 1e-12 || t.release <= l3.s + 1e-12) {
      if (t.release <= l3.s) {
        lhs += std::pow(t.work / (t.deadline - l3.s), cfg.core.lambda);
      }
    }
  }
  if (l3.s > ts[0].release + 1e-9 && l3.s < ts[1].release - 1e-9) {
    expect_near_rel(target, lhs, 1e-6, "Lemma 3 stationarity");
  }
}

TEST(Lemma3, RejectsNonZeroAlpha) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  std::vector<Task> ts{task(0, 0.0, 0.1, 3.0)};
  EXPECT_FALSE(solve_block_lemma3(ts, cfg).feasible);
}

}  // namespace
}  // namespace sdem
