// Tests for the general-task-set lower bound.
#include <gtest/gtest.h>

#include "core/agreeable.hpp"
#include "core/lower_bound.hpp"
#include "core/online_sdem.hpp"
#include "sched/energy.hpp"
#include "sim/event_sim.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::make_cfg;
using test::task;

TEST(Wis, KnownInstances) {
  // Disjoint: take all.
  EXPECT_DOUBLE_EQ(weighted_interval_schedule(
                       {{0, 1, 2.0}, {2, 3, 3.0}, {4, 5, 1.0}}),
                   6.0);
  // Nested/overlapping: best single vs pair.
  EXPECT_DOUBLE_EQ(weighted_interval_schedule(
                       {{0, 10, 5.0}, {0, 4, 3.0}, {5, 9, 3.0}}),
                   6.0);
  // Heavy overlap wins alone.
  EXPECT_DOUBLE_EQ(weighted_interval_schedule(
                       {{0, 10, 9.0}, {0, 4, 3.0}, {5, 9, 3.0}}),
                   9.0);
  // Touching endpoints are compatible (intervals are half-open in spirit).
  EXPECT_DOUBLE_EQ(weighted_interval_schedule({{0, 2, 1.0}, {2, 4, 1.0}}),
                   2.0);
  EXPECT_DOUBLE_EQ(weighted_interval_schedule({}), 0.0);
}

TEST(LowerBound, NeverExceedsOfflineOptimum) {
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.memory.xi_m = 0.0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TaskSet ts = make_agreeable(6, seed * 7, 0.080);
    const auto opt = solve_agreeable(ts, cfg);
    ASSERT_TRUE(opt.feasible);
    const auto lb = lower_bound_energy(ts, cfg);
    EXPECT_LE(lb.total(), opt.energy + 1e-9) << "seed " << seed;
    EXPECT_GT(lb.total(), 0.0);
  }
}

TEST(LowerBound, NeverExceedsOnlineEnergy) {
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.num_cores = 8;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SyntheticParams p;
    p.num_tasks = 50;
    p.max_interarrival = 0.200;
    const TaskSet ts = make_synthetic(p, seed * 3);
    SdemOnPolicy pol;
    const auto sim = simulate(ts, cfg, pol);
    EnergyOptions opts;
    opts.horizon_lo = sim.horizon_lo;
    opts.horizon_hi = sim.horizon_hi;
    const double online = compute_energy(sim.schedule, cfg, opts)
                              .system_total();
    const auto lb = lower_bound_energy(ts, cfg);
    EXPECT_LE(lb.total(), online + 1e-9) << "seed " << seed;
  }
}

TEST(LowerBound, TightForSingleTask) {
  // One loose task: the bound is exactly the optimum — the core part is
  // the window optimum and the memory must cover at least w/s_up... the
  // optimum memory time is w/s1, so the bound is strictly below but the
  // core part matches.
  auto cfg = make_cfg(0.31, 0.0, 1900.0);  // no memory: LB must be exact
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 3.0));
  const auto lb = lower_bound_energy(ts, cfg);
  const double opt = cfg.core.exec_energy(
      3.0, cfg.core.critical_speed(ts[0].filled_speed()));
  EXPECT_NEAR(lb.total(), opt, 1e-12);
}

TEST(LowerBound, MemoryPartGrowsWithDisjointSpread) {
  auto cfg = make_cfg(0.0, 4.0, 1900.0);
  TaskSet together;
  together.add(task(0, 0.0, 0.010, 4.0));
  together.add(task(1, 0.0, 0.010, 4.0));  // overlapping regions
  TaskSet apart;
  apart.add(task(0, 0.0, 0.010, 4.0));
  apart.add(task(1, 0.500, 0.510, 4.0));  // disjoint regions
  const auto lb1 = lower_bound_energy(together, cfg);
  const auto lb2 = lower_bound_energy(apart, cfg);
  EXPECT_GT(lb2.memory, lb1.memory);
}

}  // namespace
}  // namespace sdem
