// Tests for the MBKP baseline policy.
#include <gtest/gtest.h>

#include <set>

#include "baseline/mbkp.hpp"
#include "sched/validate.hpp"
#include "sim/event_sim.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::make_cfg;
using test::task;

SystemConfig sim_cfg() {
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.num_cores = 8;
  return cfg;
}

TEST(Mbkp, FinishesLightLoadWithoutMisses) {
  SyntheticParams p;
  p.num_tasks = 60;
  p.max_interarrival = 0.400;
  const TaskSet ts = make_synthetic(p, 11);
  MbkpPolicy pol;
  const auto res = simulate(ts, sim_cfg(), pol);
  EXPECT_EQ(res.unfinished, 0);
  EXPECT_EQ(res.deadline_misses, 0);
  ValidateOptions vopts;
  vopts.require_non_migrating = true;
  const auto v = validate_schedule(res.schedule, ts, sim_cfg(), vopts);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(Mbkp, TaskStaysOnItsCore) {
  SyntheticParams p;
  p.num_tasks = 40;
  p.max_interarrival = 0.100;
  const TaskSet ts = make_synthetic(p, 5);
  MbkpPolicy pol;
  const auto res = simulate(ts, sim_cfg(), pol);
  std::map<int, std::set<int>> cores_of;
  for (const auto& seg : res.schedule.segments()) {
    cores_of[seg.task_id].insert(seg.core);
  }
  for (const auto& [id, cores] : cores_of) {
    EXPECT_EQ(cores.size(), 1u) << "task " << id << " migrated";
  }
}

TEST(Mbkp, UsesMultipleCores) {
  SyntheticParams p;
  p.num_tasks = 64;
  p.max_interarrival = 0.050;
  const TaskSet ts = make_synthetic(p, 7);
  MbkpPolicy pol;
  const auto res = simulate(ts, sim_cfg(), pol);
  std::set<int> used;
  for (const auto& seg : res.schedule.segments()) used.insert(seg.core);
  EXPECT_GT(used.size(), 2u);
  EXPECT_LE(static_cast<int>(used.size()), 8);
}

TEST(Mbkp, SameDensityClassRoundRobins) {
  // Identical tasks arriving together must spread across cores.
  TaskSet ts;
  for (int i = 0; i < 8; ++i) ts.add(task(i, 0.0, 0.050, 3.0));
  MbkpPolicy pol;
  const auto res = simulate(ts, sim_cfg(), pol);
  std::set<int> used;
  for (const auto& seg : res.schedule.segments()) used.insert(seg.core);
  EXPECT_EQ(used.size(), 8u);
  EXPECT_EQ(res.deadline_misses, 0);
}

TEST(Mbkp, SpeedsRespectCap) {
  SyntheticParams p;
  p.num_tasks = 50;
  p.max_interarrival = 0.020;  // busy
  const TaskSet ts = make_synthetic(p, 13);
  MbkpPolicy pol;
  const auto res = simulate(ts, sim_cfg(), pol);
  for (const auto& seg : res.schedule.segments()) {
    EXPECT_LE(seg.speed, 1900.0 * (1.0 + 1e-9));
  }
}

}  // namespace
}  // namespace sdem
