// Tests for the comparison harness invariants (§8).
#include <gtest/gtest.h>

#include "sim/metrics.hpp"
#include "test_util.hpp"
#include "workload/dspstone.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

SystemConfig paper_cfg() {
  auto cfg = SystemConfig::paper_default();
  cfg.core.s_min = 0.0;  // the theory treats speeds as continuous below s_up
  return cfg;
}

TEST(Metrics, MbkpsNeverWorseThanMbkp) {
  // Same schedule, optimal gap discipline vs never-sleep: MBKPS <= MBKP.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SyntheticParams p;
    p.num_tasks = 80;
    p.max_interarrival = 0.400;
    const auto cmp = run_comparison(make_synthetic(p, seed), paper_cfg());
    EXPECT_LE(cmp.mbkps.energy.system_total(),
              cmp.mbkp.energy.system_total() + 1e-9)
        << "seed " << seed;
    EXPECT_GE(cmp.system_saving_mbkps(), -1e-12);
  }
}

TEST(Metrics, SdemOnBeatsMbkpsOnSyntheticDefaults) {
  // The paper's headline: SDEM-ON saves more than MBKPS at the default
  // operating point. Averaged over seeds to avoid flakiness.
  double sdem = 0.0, mbkps = 0.0;
  constexpr int kSeeds = 6;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SyntheticParams p;
    p.num_tasks = 100;
    p.max_interarrival = 0.400;
    const auto cmp = run_comparison(make_synthetic(p, seed * 7), paper_cfg());
    sdem += cmp.system_saving_sdem();
    mbkps += cmp.system_saving_mbkps();
  }
  EXPECT_GT(sdem / kSeeds, mbkps / kSeeds);
}

TEST(Metrics, MemorySleepLongerUnderSdemOn) {
  double sdem_sleep = 0.0, mbkps_sleep = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SyntheticParams p;
    p.num_tasks = 100;
    p.max_interarrival = 0.400;
    const auto cmp = run_comparison(make_synthetic(p, seed * 3), paper_cfg());
    sdem_sleep += cmp.sdem.memory_sleep_time;
    mbkps_sleep += cmp.mbkps.memory_sleep_time;
    EXPECT_EQ(cmp.mbkp.memory_sleep_time, 0.0);  // never sleeps by def.
  }
  EXPECT_GT(sdem_sleep, mbkps_sleep);
}

TEST(Metrics, NoMissesAcrossThePaperGrid) {
  // Spot-check the Table 4 corners for schedulability.
  for (double x : {0.100, 0.800}) {
    for (double alpha_m : {1.0, 8.0}) {
      auto cfg = paper_cfg();
      cfg.memory.alpha_m = alpha_m;
      SyntheticParams p;
      p.num_tasks = 80;
      p.max_interarrival = x;
      const auto cmp = run_comparison(make_synthetic(p, 42), cfg);
      EXPECT_EQ(cmp.sdem.deadline_misses, 0) << x << " " << alpha_m;
      EXPECT_EQ(cmp.mbkp.deadline_misses, 0) << x << " " << alpha_m;
      EXPECT_EQ(cmp.sdem.unfinished, 0);
    }
  }
}

TEST(Metrics, DspstoneWorkloadRuns) {
  DspstoneParams p;
  p.num_tasks = 80;
  p.utilization_u = 5.0;
  const auto cmp = run_comparison(make_dspstone(p, 9), paper_cfg());
  EXPECT_EQ(cmp.sdem.unfinished, 0);
  EXPECT_EQ(cmp.mbkp.unfinished, 0);
  EXPECT_GE(cmp.system_saving_sdem(), cmp.system_saving_mbkps() - 0.05);
}

TEST(Metrics, SavingRatiosAreSane) {
  SyntheticParams p;
  p.num_tasks = 60;
  p.max_interarrival = 0.500;
  const auto cmp = run_comparison(make_synthetic(p, 17), paper_cfg());
  EXPECT_GE(cmp.system_saving_sdem(), 0.0);
  EXPECT_LT(cmp.system_saving_sdem(), 1.0);
  EXPECT_GE(cmp.memory_saving_sdem(), 0.0);
  EXPECT_LT(cmp.memory_saving_sdem(), 1.0);
}

}  // namespace
}  // namespace sdem
