// Tests for the numeric substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "support/numeric.hpp"

namespace sdem {
namespace {

TEST(Bisect, FindsRootOfIncreasingFunction) {
  const double r = bisect_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, FindsRootOfDecreasingFunction) {
  const double r = bisect_root([](double x) { return 1.0 - x; }, 0.0, 5.0);
  EXPECT_NEAR(r, 1.0, 1e-10);
}

TEST(Bisect, ReturnsEndpointWhenNoSignChange) {
  const double r = bisect_root([](double x) { return x + 10.0; }, 0.0, 1.0);
  EXPECT_EQ(r, 0.0);  // |f(0)| = 10 < |f(1)| = 11
}

TEST(Bisect, ExactRootAtEndpoint) {
  EXPECT_EQ(bisect_root([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_EQ(bisect_root([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(Golden, FindsParabolaMinimum) {
  const double x = golden_min(
      [](double v) { return (v - 0.3) * (v - 0.3) + 1.0; }, 0.0, 1.0);
  EXPECT_NEAR(x, 0.3, 1e-7);  // golden resolution ~ sqrt(eps)
}

TEST(Golden, HandlesBoundaryMinimum) {
  const double x = golden_min([](double v) { return v; }, 2.0, 5.0);
  EXPECT_NEAR(x, 2.0, 1e-6);
}

TEST(Golden, DegenerateInterval) {
  EXPECT_EQ(golden_min([](double v) { return v * v; }, 1.0, 1.0), 1.0);
}

TEST(GridRefine, FindsGlobalMinOfBimodal) {
  // Two basins: grid must land in the deeper one.
  auto f = [](double x) {
    return std::min((x - 0.2) * (x - 0.2) + 0.5, (x - 0.8) * (x - 0.8));
  };
  const double x = grid_refine_min(f, 0.0, 1.0, 512);
  EXPECT_NEAR(x, 0.8, 1e-6);
}

TEST(GridRefine2, FindsQuadraticMinimum) {
  double a = 0.0, b = 0.0;
  const double v = grid_refine_min2(
      [](double x, double y) {
        return (x - 0.4) * (x - 0.4) + (y - 0.7) * (y - 0.7);
      },
      0.0, 1.0, 0.0, 1.0, a, b, 32);
  EXPECT_NEAR(a, 0.4, 1e-6);
  EXPECT_NEAR(b, 0.7, 1e-6);
  EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(GridRefine2, HandlesDiagonalConstraint) {
  // min x + y subject to y - x >= 1 (inf outside): optimum on the boundary.
  double a = 0.0, b = 0.0;
  const double v = grid_refine_min2(
      [](double x, double y) {
        if (y - x < 1.0) return std::numeric_limits<double>::infinity();
        return (x - 0.5) * (x - 0.5) + y;
      },
      0.0, 2.0, 0.0, 2.0, a, b, 64);
  EXPECT_NEAR(v, 1.25, 1e-4);  // x = 0, y = 1 on the constraint
}

TEST(StretchEnergy, Basics) {
  EXPECT_EQ(stretch_energy_term(0.0, 1.0, 3.0), 0.0);
  EXPECT_TRUE(std::isinf(stretch_energy_term(1.0, 0.0, 3.0)));
  // w^3 / len^2.
  EXPECT_NEAR(stretch_energy_term(2.0, 4.0, 3.0), 8.0 / 16.0, 1e-12);
}

TEST(ApproxEq, RelativeSemantics) {
  EXPECT_TRUE(approx_eq(1e9, 1e9 * (1.0 + 1e-10)));
  EXPECT_FALSE(approx_eq(1.0, 1.1));
  EXPECT_TRUE(approx_eq(0.0, 1e-10));
}

}  // namespace
}  // namespace sdem
