// Tests for the Optimal Available per-core plan.
#include <gtest/gtest.h>

#include "baseline/oa.hpp"

namespace sdem {
namespace {

TEST(Oa, SpeedIsMaxPrefixDensity) {
  // Jobs: 4 due at t=2, 10 more due at t=4 (from now = 0).
  const std::vector<OaJob> jobs{{0, 2.0, 4.0}, {1, 4.0, 10.0}};
  // Prefix densities: 4/2 = 2, 14/4 = 3.5 -> OA speed 3.5.
  EXPECT_NEAR(oa_speed(0.0, jobs), 3.5, 1e-12);
}

TEST(Oa, PlanRunsEdfAtStaircaseSpeeds) {
  const std::vector<OaJob> jobs{{0, 2.0, 4.0}, {1, 4.0, 10.0}};
  const auto plan = oa_plan(0.0, jobs, 0);
  ASSERT_EQ(plan.size(), 2u);
  // Both jobs in the steepest prefix: run back to back at 3.5.
  EXPECT_NEAR(plan[0].speed, 3.5, 1e-12);
  EXPECT_NEAR(plan[1].speed, 3.5, 1e-12);
  EXPECT_EQ(plan[0].task_id, 0);
  EXPECT_NEAR(plan[1].end, 4.0, 1e-12);
}

TEST(Oa, StaircaseDropsAfterSteepPrefix) {
  // Steep early job, shallow late job.
  const std::vector<OaJob> jobs{{0, 1.0, 10.0}, {1, 100.0, 1.0}};
  const auto plan = oa_plan(0.0, jobs, 0);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_NEAR(plan[0].speed, 10.0, 1e-12);
  EXPECT_LT(plan[1].speed, 1.0);  // (1+10)/100 vs 1/100 staircase
}

TEST(Oa, DeadlinesMet) {
  const std::vector<OaJob> jobs{
      {0, 0.010, 3.0}, {1, 0.030, 4.0}, {2, 0.100, 2.0}};
  const auto plan = oa_plan(0.0, jobs, 0);
  double done[3] = {0, 0, 0};
  for (const auto& seg : plan) {
    done[seg.task_id] += seg.work();
    for (const auto& j : jobs) {
      if (j.id == seg.task_id) EXPECT_LE(seg.end, j.deadline + 1e-9);
    }
  }
  EXPECT_NEAR(done[0], 3.0, 1e-9);
  EXPECT_NEAR(done[1], 4.0, 1e-9);
  EXPECT_NEAR(done[2], 2.0, 1e-9);
}

TEST(Oa, CapAtSup) {
  const std::vector<OaJob> jobs{{0, 1.0, 100.0}};
  const auto plan = oa_plan(0.0, jobs, 0, 50.0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_NEAR(plan[0].speed, 50.0, 1e-12);  // overloaded: races at s_up
  EXPECT_NEAR(plan[0].end, 2.0, 1e-12);     // finishes late (miss recorded
                                            // by the caller's validator)
}

TEST(Oa, EmptyAndZeroWork) {
  EXPECT_TRUE(oa_plan(0.0, {}, 0).empty());
  EXPECT_TRUE(oa_plan(0.0, {{0, 1.0, 0.0}}, 0).empty());
}

TEST(Oa, NonZeroNow) {
  const std::vector<OaJob> jobs{{0, 5.0, 8.0}};
  const auto plan = oa_plan(3.0, jobs, 2);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_NEAR(plan[0].start, 3.0, 1e-12);
  EXPECT_NEAR(plan[0].speed, 4.0, 1e-12);  // 8 work / 2 s
  EXPECT_EQ(plan[0].core, 2);
}

}  // namespace
}  // namespace sdem
