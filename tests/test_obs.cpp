// Observability layer (src/obs/, docs/observability.md): the acceptance
// properties the instrumentation must keep — deterministic-domain counters
// identical whatever the thread count, reset that keeps cached call-site
// cells valid, macros that compile to no-ops under SDEM_OBS=0 (this file
// builds and passes in both modes), and a Chrome-trace sink whose B/E
// duration pairs are monotone and well-nested per thread.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_registry.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace sdem {
namespace {

using obs::Registry;

TEST(Obs, MacroCountersReachTheRegistry) {
  Registry::instance().reset();
  SDEM_OBS_COUNT("test_obs/macro", 3);
  SDEM_OBS_INC("test_obs/macro");
  SDEM_OBS_INC("test_obs/macro");
  const obs::Snapshot snap = Registry::instance().snapshot();
  const std::uint64_t* c = snap.counter("test_obs/macro");
  if (obs::compiled()) {
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(*c, 5u);
  } else {
    // SDEM_OBS=0: the macros vanish, the registry stays linked but empty.
    EXPECT_EQ(c, nullptr);
  }
}

TEST(Obs, DistTracksCountMinMeanMax) {
  if (!obs::compiled()) GTEST_SKIP() << "built with SDEM_OBS=0";
  Registry::instance().reset();
  SDEM_OBS_DIST("test_obs/dist", 0.5);
  SDEM_OBS_DIST("test_obs/dist", 2.0);
  SDEM_OBS_DIST("test_obs/dist", 1.5);
  const obs::Snapshot snap = Registry::instance().snapshot();
  const obs::DistValue* d = snap.dist("test_obs/dist");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 3u);
  EXPECT_DOUBLE_EQ(d->min, 0.5);
  EXPECT_DOUBLE_EQ(d->max, 2.0);
  EXPECT_NEAR(d->mean(), 4.0 / 3.0, 1e-6);
}

TEST(Obs, ResetZeroesButKeepsRegistration) {
  if (!obs::compiled()) GTEST_SKIP() << "built with SDEM_OBS=0";
  Registry::instance().reset();
  SDEM_OBS_COUNT("test_obs/reset_me", 7);
  Registry::instance().reset();
  const obs::Snapshot snap = Registry::instance().snapshot();
  const std::uint64_t* c = snap.counter("test_obs/reset_me");
  ASSERT_NE(c, nullptr);  // registration survives (cached cells stay valid)
  EXPECT_EQ(*c, 0u);
  // The cached call-site cell still works after the reset.
  SDEM_OBS_COUNT("test_obs/reset_me", 2);
  const obs::Snapshot snap2 = Registry::instance().snapshot();
  EXPECT_EQ(*snap2.counter("test_obs/reset_me"), 2u);
}

TEST(Obs, ShardsFromOtherThreadsMergeIntoTheSnapshot) {
  if (!obs::compiled()) GTEST_SKIP() << "built with SDEM_OBS=0";
  Registry::instance().reset();
  SDEM_OBS_COUNT("test_obs/merged", 1);
  std::thread t([] { SDEM_OBS_COUNT("test_obs/merged", 10); });
  t.join();
  const obs::Snapshot snap = Registry::instance().snapshot();
  EXPECT_EQ(*snap.counter("test_obs/merged"), 11u);
}

// The tentpole acceptance property: the deterministic counter domain of a
// real experiment is a pure function of the work done, so running the same
// sweep serially and on four workers yields byte-identical counters JSON.
TEST(Obs, CounterMergeIsJobCountIndependent) {
  bench::RunOptions opt;
  opt.seeds = 2;
  const bench::Experiment* e = bench::find_experiment("online_vs_offline");
  ASSERT_NE(e, nullptr);

  Registry::instance().reset();
  opt.pool = nullptr;  // serial reference
  (void)e->run(opt);
  const std::string serial =
      Registry::instance().snapshot().counters_json().dump(2);

  ThreadPool pool(4);
  Registry::instance().reset();
  opt.pool = &pool;
  (void)e->run(opt);
  const std::string pooled =
      Registry::instance().snapshot().counters_json().dump(2);

  EXPECT_EQ(serial, pooled);
  if (obs::compiled()) {
    // Not vacuous: the run populated simulator and solver counters.
    EXPECT_NE(serial.find("sim/runs"), std::string::npos);
    EXPECT_NE(serial.find("agreeable/solves"), std::string::npos);
  }
}

// Walk a Chrome-trace document: per tid, timestamps must be monotone
// non-decreasing and B/E events must form a balanced, well-nested stack
// (every E closes the innermost open B of the same name).
void check_trace_events(const Json& doc, std::size_t* total) {
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::map<int, std::vector<std::string>> stacks;
  std::map<int, double> last_ts;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    const std::string ph = e.at("ph").as_string();
    const int tid = static_cast<int>(e.at("tid").as_number());
    const double ts = e.at("ts").as_number();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "timestamps regress on tid " << tid;
    }
    last_ts[tid] = ts;
    if (ph == "B") {
      stacks[tid].push_back(e.at("name").as_string());
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty()) << "E without B on tid " << tid;
      EXPECT_EQ(stacks[tid].back(), e.at("name").as_string());
      stacks[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed B events on tid " << tid;
  }
  *total = events->size();
}

TEST(ObsTrace, EventsAreMonotoneAndWellNestedPerThread) {
  obs::trace::start();
  {
    SDEM_OBS_TIMER("test_obs/outer");
    {
      SDEM_OBS_TIMER("test_obs/inner");
    }
    std::thread t([] { SDEM_OBS_TIMER("test_obs/worker"); });
    t.join();
  }
  obs::trace::stop();

  // Round-trip through text: the file the tools write must parse with the
  // same JSON implementation chrome://tracing-bound consumers start from.
  const Json doc = Json::parse(obs::trace::to_json().dump(2));
  std::size_t total = 0;
  check_trace_events(doc, &total);
  if (obs::compiled()) {
    EXPECT_GE(total, 6u);  // three timers -> three B/E pairs
  } else {
    EXPECT_EQ(total, 0u);  // timers are no-ops; recording stays empty
  }
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
}

}  // namespace
}  // namespace sdem
