// Tests for the SDEM-ON online heuristic (§6).
#include <gtest/gtest.h>

#include "core/common_release_alpha.hpp"
#include "core/online_sdem.hpp"
#include "sched/validate.hpp"
#include "sim/event_sim.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

SystemConfig sim_cfg(double alpha = 0.31) {
  auto cfg = make_cfg(alpha, 4.0, 1900.0);
  cfg.num_cores = 8;
  return cfg;
}

TEST(SdemOn, SingleTaskMatchesOfflineOptimum) {
  // One task arriving alone: the online plan is exactly the Section 4
  // single-task optimum (procrastinate, then run p = w / s*).
  TaskSet ts;
  ts.add(task(0, 0.0, 0.100, 3.0));
  SdemOnPolicy pol;
  const auto cfg = sim_cfg();
  const auto res = simulate(ts, cfg, pol);
  EXPECT_EQ(res.deadline_misses, 0);
  const auto offline = solve_common_release_alpha(ts, cfg);
  ASSERT_TRUE(offline.feasible);
  ASSERT_EQ(res.schedule.size(), 1u);
  const auto& seg = res.schedule.segments()[0];
  const auto& off_seg = offline.schedule.segments()[0];
  expect_near_rel(off_seg.speed, seg.speed, 1e-9, "planned speed");
  // Procrastinated: the task ends exactly at its deadline.
  expect_near_rel(0.100, seg.end, 1e-9, "procrastinated finish");
}

TEST(SdemOn, ProcrastinationAlignsArrivals) {
  // Task 1 is lazy; task 2 arrives before task 1's latest start. Both runs
  // must overlap (that is the whole point of SDEM-ON).
  TaskSet ts;
  ts.add(task(0, 0.000, 0.200, 3.0));
  ts.add(task(1, 0.010, 0.210, 3.0));
  SdemOnPolicy pol;
  const auto res = simulate(ts, sim_cfg(), pol);
  EXPECT_EQ(res.deadline_misses, 0);
  const auto by_task = res.schedule.by_task();
  const auto& a = by_task.at(0);
  const auto& b = by_task.at(1);
  const double a_start = a.front().start;
  const double b_start = b.front().start;
  expect_near_rel(a_start, b_start, 1e-6, "batch starts together");
}

TEST(SdemOn, NoMissesOnGeneratedWorkloads) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SyntheticParams p;
    p.num_tasks = 60;
    p.max_interarrival = 0.200;
    const TaskSet ts = make_synthetic(p, seed);
    SdemOnPolicy pol;
    const auto res = simulate(ts, sim_cfg(), pol);
    EXPECT_EQ(res.unfinished, 0) << "seed " << seed;
    EXPECT_EQ(res.deadline_misses, 0) << "seed " << seed;
    ValidateOptions vopts;
    vopts.require_non_migrating = false;  // replans may move cores
    const auto v = validate_schedule(res.schedule, ts, sim_cfg(), vopts);
    EXPECT_TRUE(v.ok) << v.error << " seed " << seed;
  }
}

TEST(SdemOn, WorksWithAlphaZeroModel) {
  SyntheticParams p;
  p.num_tasks = 40;
  p.max_interarrival = 0.300;
  const TaskSet ts = make_synthetic(p, 3);
  SdemOnPolicy pol;
  const auto res = simulate(ts, sim_cfg(0.0), pol);
  EXPECT_EQ(res.unfinished, 0);
  EXPECT_EQ(res.deadline_misses, 0);
}

TEST(SdemOn, WorksWithTransitionOverheads) {
  auto cfg = sim_cfg();
  cfg.memory.xi_m = 0.040;
  SyntheticParams p;
  p.num_tasks = 40;
  p.max_interarrival = 0.300;
  const TaskSet ts = make_synthetic(p, 9);
  SdemOnPolicy pol;
  const auto res = simulate(ts, cfg, pol);
  EXPECT_EQ(res.unfinished, 0);
  EXPECT_EQ(res.deadline_misses, 0);
}

TEST(SdemOn, SharedCoreSerializesEdf) {
  // Two tasks forced onto one core must not overlap.
  auto cfg = sim_cfg();
  cfg.num_cores = 1;
  TaskSet ts;
  ts.add(task(0, 0.0, 0.100, 3.0));
  ts.add(task(1, 0.0, 0.200, 3.0));
  SdemOnPolicy pol;
  const auto res = simulate(ts, cfg, pol);
  EXPECT_EQ(res.deadline_misses, 0);
  const auto v = validate_schedule(res.schedule, ts, cfg);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(SdemOn, OverloadedCoreRacesAtSup) {
  // Infeasible pair on one core: the policy compresses to s_up and the miss
  // is recorded rather than crashing.
  auto cfg = sim_cfg();
  cfg.num_cores = 1;
  TaskSet ts;
  ts.add(task(0, 0.0, 0.010, 15.0));
  ts.add(task(1, 0.0, 0.011, 15.0));  // 30 Mc in 11 ms needs 2727 MHz
  SdemOnPolicy pol;
  const auto res = simulate(ts, cfg, pol);
  EXPECT_EQ(res.unfinished, 0);  // all work done, just late
  EXPECT_GE(res.deadline_misses, 1);
}

}  // namespace
}  // namespace sdem
