// Tests for periodic/sporadic task-system expansion.
#include <gtest/gtest.h>

#include "sim/metrics.hpp"
#include "workload/periodic.hpp"

namespace sdem {
namespace {

PeriodicSystem sample_system() {
  PeriodicSystem sys;
  sys.add(PeriodicTask{0, 2.0, 0.050, 0.0, 0.0});   // 40 MHz demand
  sys.add(PeriodicTask{1, 3.0, 0.100, 0.0, 0.010}); // 30 MHz demand
  return sys;
}

TEST(Periodic, DemandMhz) {
  EXPECT_NEAR(sample_system().demand_mhz(), 40.0 + 30.0, 1e-12);
}

TEST(Periodic, Hyperperiod) {
  EXPECT_NEAR(sample_system().hyperperiod(), 0.100, 1e-12);
  PeriodicSystem sys;
  sys.add(PeriodicTask{0, 1.0, 0.030});
  sys.add(PeriodicTask{1, 1.0, 0.050});
  EXPECT_NEAR(sys.hyperperiod(), 0.150, 1e-9);
}

TEST(Periodic, ExpandCountsAndDeadlines) {
  const TaskSet jobs = sample_system().expand(0.200);
  // Task 0: releases at 0,50,100,150 -> 4 jobs; task 1: 10,110 -> 2 jobs.
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_TRUE(jobs.validate().empty());
  int early = 0;
  for (const auto& j : jobs.tasks()) {
    if (j.work == 2.0) {
      EXPECT_NEAR(j.deadline - j.release, 0.050, 1e-12);
      ++early;
    } else {
      EXPECT_NEAR(j.deadline - j.release, 0.100, 1e-12);
    }
  }
  EXPECT_EQ(early, 4);
}

TEST(Periodic, ExplicitDeadlineRespected) {
  PeriodicSystem sys;
  sys.add(PeriodicTask{0, 1.0, 0.100, 0.030, 0.0});  // constrained deadline
  const TaskSet jobs = sys.expand(0.100);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_NEAR(jobs[0].deadline, 0.030, 1e-12);
}

TEST(Periodic, SporadicJitterBoundsAndDeterminism) {
  const auto a = sample_system().expand_sporadic(0.500, 0.2, 9);
  const auto b = sample_system().expand_sporadic(0.500, 0.2, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].release, b[i].release);
  }
  // Inter-release gaps per stream within [period, 1.2 period].
  double prev = -1.0;
  for (const auto& j : a.tasks()) {
    if (j.work != 2.0) continue;  // stream 0 only
    if (prev >= 0.0) {
      const double gap = j.release - prev;
      EXPECT_GE(gap, 0.050 - 1e-12);
      EXPECT_LE(gap, 0.060 + 1e-12);
    }
    prev = j.release;
  }
}

TEST(Periodic, ExpandedJobsScheduleEndToEnd) {
  // The expansion feeds the online harness directly.
  auto cfg = SystemConfig::paper_default();
  PeriodicSystem sys;
  for (int i = 0; i < 4; ++i) {
    sys.add(PeriodicTask{i, 3.0, 0.080 + 0.020 * i, 0.0, 0.005 * i});
  }
  const TaskSet jobs = sys.expand(1.0);
  const auto cmp = run_comparison(jobs, cfg);
  EXPECT_EQ(cmp.sdem.deadline_misses, 0);
  EXPECT_EQ(cmp.sdem.unfinished, 0);
  EXPECT_LE(cmp.sdem.energy.system_total(),
            cmp.mbkp.energy.system_total() + 1e-9);
}

TEST(Periodic, HyperperiodUnrepresentable) {
  PeriodicSystem sys;
  sys.add(PeriodicTask{0, 1.0, 1e-9});  // below the 1 us grid
  EXPECT_EQ(sys.hyperperiod(), 0.0);
}

}  // namespace
}  // namespace sdem
