// Tests for the power model and derived critical speeds.
#include <gtest/gtest.h>

#include <cmath>

#include "model/power.hpp"
#include "test_util.hpp"

namespace sdem {
namespace {

using test::make_cfg;
using test::task;

TEST(CorePower, PowerAndEnergy) {
  CorePower c;
  c.alpha = 0.3;
  c.beta = 1e-9;
  c.lambda = 3.0;
  EXPECT_NEAR(c.dynamic_power(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(c.power(1000.0), 1.3, 1e-12);
  // exec_energy: P(s) * w / s.
  EXPECT_NEAR(c.exec_energy(500.0, 1000.0), 1.3 * 0.5, 1e-12);
  EXPECT_EQ(c.exec_energy(0.0, 1000.0), 0.0);
  EXPECT_TRUE(std::isinf(c.exec_energy(1.0, 0.0)));
}

TEST(CorePower, CriticalSpeedFormula) {
  // s_m = (alpha / (beta (lambda-1)))^(1/lambda).
  CorePower c;
  c.alpha = 0.31;
  c.beta = 2.53e-10;
  c.lambda = 3.0;
  const double s_m = c.critical_speed_raw();
  EXPECT_NEAR(s_m, std::cbrt(0.31 / (2.53e-10 * 2.0)), 1e-9);
  // At s_m the energy-per-cycle derivative vanishes: probe numerically.
  auto epc = [&](double s) { return c.power(s) / s; };
  EXPECT_LT(epc(s_m), epc(s_m * 0.9));
  EXPECT_LT(epc(s_m), epc(s_m * 1.1));
}

TEST(CorePower, CriticalSpeedClamped) {
  CorePower c;
  c.alpha = 0.31;
  c.beta = 2.53e-10;
  c.lambda = 3.0;
  c.s_up = 800.0;  // below raw s_m (~849)
  EXPECT_DOUBLE_EQ(c.critical_speed(100.0), 800.0);
  c.s_up = 1900.0;
  EXPECT_NEAR(c.critical_speed(100.0), c.critical_speed_raw(), 1e-9);
  // Filled speed above s_m wins.
  EXPECT_DOUBLE_EQ(c.critical_speed(1500.0), 1500.0);
}

TEST(CorePower, AlphaZeroMeansZeroCriticalSpeed) {
  CorePower c;
  c.alpha = 0.0;
  c.beta = 1e-9;
  EXPECT_EQ(c.critical_speed_raw(), 0.0);
}

TEST(SystemConfig, MemoryCriticalSpeedOrdering) {
  // s_1 >= s_0 always (the memory adds static power to shed).
  const auto cfg = make_cfg(0.31, 4.0, 0.0);
  EXPECT_GT(cfg.memory_critical_speed_raw(), cfg.core.critical_speed_raw());
  EXPECT_GE(cfg.memory_critical_speed(100.0), cfg.core.critical_speed(100.0));
}

TEST(SystemConfig, PaperDefaults) {
  const auto cfg = SystemConfig::paper_default();
  EXPECT_DOUBLE_EQ(cfg.core.alpha, 0.31);
  EXPECT_DOUBLE_EQ(cfg.core.s_up, 1900.0);
  EXPECT_DOUBLE_EQ(cfg.memory.alpha_m, 4.0);
  EXPECT_DOUBLE_EQ(cfg.memory.xi_m, 0.040);
  EXPECT_EQ(cfg.num_cores, 8);
  // The A57-like critical speed lands inside the DVFS range.
  const double s_m = cfg.core.critical_speed_raw();
  EXPECT_GT(s_m, cfg.core.s_min);
  EXPECT_LT(s_m, cfg.core.s_up);
  EXPECT_EQ(SystemConfig::paper_default_alpha0().core.alpha, 0.0);
}

TEST(SystemConfig, ConstrainedCriticalSpeed) {
  auto cfg = make_cfg(0.31, 0.0, 1900.0);
  cfg.core.xi = 0.010;
  const double s_m = cfg.core.critical_speed_raw();
  // Plenty of slack: race at s_m.
  EXPECT_NEAR(cfg.constrained_critical_speed(task(0, 0.0, 1.0, 4.0), 1.0), s_m,
              1e-9);
  // No slack: stretch to the filled speed.
  const Task tight = task(0, 0.0, 0.006, 4.0);
  EXPECT_NEAR(cfg.constrained_critical_speed(tight, 0.006),
              tight.filled_speed(), 1e-9);
}

TEST(MemoryPower, TransitionEnergy) {
  MemoryPower m;
  m.alpha_m = 4.0;
  m.xi_m = 0.040;
  EXPECT_NEAR(m.transition_energy(), 0.16, 1e-12);
}

TEST(CorePower, MaxSpeedUnbounded) {
  CorePower c;
  c.s_up = 0.0;
  EXPECT_TRUE(std::isinf(c.max_speed()));
  EXPECT_DOUBLE_EQ(c.clamp_speed(1e9), 1e9);
}

}  // namespace
}  // namespace sdem
