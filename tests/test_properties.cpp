// Parameterized property sweeps: optimality certification of every offline
// scheme against the brute-force references across a grid of configurations
// and random instances, plus cross-scheme consistency properties.
#include <gtest/gtest.h>

#include <tuple>

#include "core/agreeable.hpp"
#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/reference.hpp"
#include "core/transition.hpp"
#include "sched/validate.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;

// ---------------------------------------------------------------------------
// Common-release optimality: (alpha, alpha_m, n) x seeds.

using CrParam = std::tuple<double, double, int>;

class CommonReleaseOptimality : public ::testing::TestWithParam<CrParam> {};

TEST_P(CommonReleaseOptimality, SolverMatchesReference) {
  const auto [alpha, alpha_m, n] = GetParam();
  const auto cfg = make_cfg(alpha, alpha_m, 1900.0);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskSet ts = make_common_release(n, 0.0, seed * 1009 + n);
    const auto res = alpha > 0.0 ? solve_common_release_alpha(ts, cfg)
                                 : solve_common_release_alpha0(ts, cfg);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    const double ref = reference_common_release(ts, cfg);
    expect_near_rel(ref, res.energy, 2e-6, "optimality");
    const auto v = validate_schedule(res.schedule, ts, cfg);
    ASSERT_TRUE(v.ok) << v.error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CommonReleaseOptimality,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.31, 1.2),
                       ::testing::Values(0.5, 4.0, 8.0),
                       ::testing::Values(1, 3, 8, 17)));

// ---------------------------------------------------------------------------
// Binary search agrees with the linear scan on large sweeps.

class BinarySearchEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BinarySearchEquivalence, MatchesScan) {
  const int n = GetParam();
  const auto cfg = make_cfg(0.0, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const TaskSet ts = make_common_release(n, 0.0, seed * 7919);
    const auto scan = solve_common_release_alpha0(ts, cfg);
    const auto bin = solve_common_release_alpha0_binary(ts, cfg);
    ASSERT_EQ(scan.feasible, bin.feasible);
    if (scan.feasible) {
      expect_near_rel(scan.energy, bin.energy, 1e-9, "binary == scan");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BinarySearchEquivalence,
                         ::testing::Values(1, 2, 5, 16, 64, 256));

// ---------------------------------------------------------------------------
// Agreeable DP optimality across alpha and spread.

using AgParam = std::tuple<double, double, int>;  // alpha, spread, n

class AgreeableOptimality : public ::testing::TestWithParam<AgParam> {};

TEST_P(AgreeableOptimality, DpMatchesExhaustivePartitions) {
  const auto [alpha, spread, n] = GetParam();
  const auto cfg = make_cfg(alpha, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const TaskSet ts = make_agreeable(n, seed * 271 + n, spread);
    const auto res = solve_agreeable(ts, cfg);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    const double ref = reference_agreeable(ts, cfg);
    expect_near_rel(ref, res.energy, 2e-5, "optimality");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AgreeableOptimality,
    ::testing::Combine(::testing::Values(0.0, 0.31),
                       ::testing::Values(0.020, 0.150),
                       ::testing::Values(2, 4, 6)));

// ---------------------------------------------------------------------------
// Transition-overhead optimality across (xi, xi_m).

using TrParam = std::tuple<double, double>;

class TransitionOptimality : public ::testing::TestWithParam<TrParam> {};

TEST_P(TransitionOptimality, SolverMatchesDenseReference) {
  const auto [xi, xi_m] = GetParam();
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.core.xi = xi;
  cfg.memory.xi_m = xi_m;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const TaskSet ts = make_common_release(1 + int(seed) % 7, 0.0,
                                           seed * 31 + int(xi_m * 1e5));
    const auto res = solve_common_release_transition(ts, cfg);
    ASSERT_TRUE(res.feasible);
    const double ref = reference_common_release_transition(ts, cfg);
    expect_near_rel(ref, res.energy, 1e-5, "optimality");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TransitionOptimality,
    ::testing::Combine(::testing::Values(0.0, 0.001, 0.015),
                       ::testing::Values(0.0, 0.015, 0.040, 0.070)));

// ---------------------------------------------------------------------------
// Structural invariants.

TEST(Invariants, MoreMemoryPowerNeverLengthensBusyInterval) {
  // Race-to-idle monotonicity: as alpha_m grows, the optimal busy interval
  // shrinks (common release).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskSet ts = make_common_release(6, 0.0, seed * 11);
    double prev_busy = 1e18;
    for (double alpha_m : {0.25, 1.0, 4.0, 16.0, 64.0}) {
      const auto cfg = make_cfg(0.31, alpha_m, 1900.0);
      const auto res = solve_common_release_alpha(ts, cfg);
      ASSERT_TRUE(res.feasible);
      const double busy = res.schedule.memory_busy_time();
      EXPECT_LE(busy, prev_busy + 1e-9) << "alpha_m " << alpha_m;
      prev_busy = busy;
    }
  }
}

TEST(Invariants, OptimalEnergyMonotoneInWorkload) {
  // Scaling every workload up scales energy up.
  const auto cfg = make_cfg(0.31, 4.0, 0.0);
  const TaskSet base = make_common_release(5, 0.0, 3);
  double prev = 0.0;
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    TaskSet scaled;
    for (const auto& t : base.tasks()) {
      Task s = t;
      s.work *= scale;
      scaled.add(s);
    }
    const auto res = solve_common_release_alpha(scaled, cfg);
    ASSERT_TRUE(res.feasible);
    EXPECT_GT(res.energy, prev);
    prev = res.energy;
  }
}

TEST(Invariants, LooserDeadlinesNeverIncreaseEnergy) {
  const auto cfg = make_cfg(0.0, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskSet base = make_common_release(6, 0.0, seed * 5);
    const auto tight = solve_common_release_alpha0(base, cfg);
    TaskSet loose;
    for (const auto& t : base.tasks()) {
      Task s = t;
      s.deadline = t.release + t.region() * 2.0;
      loose.add(s);
    }
    const auto relaxed = solve_common_release_alpha0(loose, cfg);
    ASSERT_TRUE(tight.feasible && relaxed.feasible);
    EXPECT_LE(relaxed.energy, tight.energy + 1e-12) << "seed " << seed;
  }
}

TEST(Invariants, AgreeableDpNeverBeatsItsOwnBlocks) {
  // Subadditivity check: DP energy <= single-block energy (merging all).
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskSet ts = make_agreeable(5, seed * 23, 0.120);
    const auto dp = solve_agreeable(ts, cfg);
    const auto one = solve_block(ts.sorted_by_deadline().tasks(), cfg);
    ASSERT_TRUE(dp.feasible && one.feasible);
    EXPECT_LE(dp.energy, one.energy + 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sdem
