// Extended parameterized property sweeps covering the extension modules
// (islands, heterogeneous cores, discretization, online policies) and
// cross-cutting accounting invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baseline/mbkp.hpp"
#include "baseline/simple_policies.hpp"
#include "core/common_release_alpha.hpp"
#include "core/common_release_hetero.hpp"
#include "core/discretize.hpp"
#include "core/islands.hpp"
#include "core/online_sdem.hpp"
#include "sched/energy.hpp"
#include "sched/trace_io.hpp"
#include "sched/validate.hpp"
#include "sim/metrics.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;

// ---------------------------------------------------------------------------
// Islands: for every island count, coarser rails never help, and schedules
// stay feasible.

class IslandGranularity : public ::testing::TestWithParam<int> {};

TEST_P(IslandGranularity, MonotoneAndFeasible) {
  const int islands = GetParam();
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const TaskSet ts = make_common_release(12, 0.0, seed * 131);
    std::vector<int> fine(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) fine[i] = static_cast<int>(i);
    const auto best = solve_common_release_islands(ts, cfg, fine);
    const auto grouped = solve_common_release_islands(
        ts, cfg, assign_islands_similar_speed(ts, islands));
    ASSERT_TRUE(best.feasible && grouped.feasible);
    EXPECT_GE(grouped.energy, best.energy - 1e-9);
    const auto v = validate_schedule(grouped.schedule, ts, cfg);
    EXPECT_TRUE(v.ok) << v.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, IslandGranularity,
                         ::testing::Values(1, 2, 3, 4, 6, 12));

// ---------------------------------------------------------------------------
// Discretization: penalty non-negative, feasibility preserved, monotone
// (denser uniform ladders never cost more), across alpha configurations.

using DiscParam = std::tuple<double, int>;  // alpha, levels

class DiscretizationPenalty : public ::testing::TestWithParam<DiscParam> {};

TEST_P(DiscretizationPenalty, NonNegativeAndFeasible) {
  const auto [alpha, levels] = GetParam();
  const auto cfg = make_cfg(alpha, 4.0, 1900.0);
  const auto ladder = FrequencyLadder::uniform(levels, 700.0, 1900.0);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const TaskSet ts = make_common_release(8, 0.0, seed * 71);
    const auto cont = solve_common_release_alpha(ts, cfg);
    ASSERT_TRUE(cont.feasible);
    const auto d = discretize_schedule(cont.schedule, ladder);
    ASSERT_TRUE(d.feasible);
    const auto v = validate_schedule(d.schedule, ts, cfg);
    EXPECT_TRUE(v.ok) << v.error;
    EXPECT_GE(system_energy(d.schedule, cfg),
              system_energy(cont.schedule, cfg) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DiscretizationPenalty,
    ::testing::Combine(::testing::Values(0.0, 0.31),
                       ::testing::Values(2, 4, 8, 32)));

// ---------------------------------------------------------------------------
// Hetero: mixing core powers; homogeneous rows of the sweep must agree with
// the Section 4.2 solver; heterogeneous rows must beat all-little or match.

class HeteroMix : public ::testing::TestWithParam<double> {};

TEST_P(HeteroMix, BigCoreFractionSweep) {
  const double big_fraction = GetParam();
  CorePower big;
  big.alpha = 0.31;
  big.beta = 2.53e-10;
  big.lambda = 3.0;
  big.s_up = 1900.0;
  CorePower little = big;
  little.alpha = 0.05;
  little.beta = 5.0e-10;
  little.s_up = 1200.0;
  MemoryPower mem{4.0, 0.0};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const TaskSet ts = make_common_release(8, 0.0, seed * 301);
    std::vector<CorePower> cores;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      cores.push_back(static_cast<double>(i) < big_fraction * ts.size()
                          ? big
                          : little);
    }
    const auto res = solve_common_release_hetero(ts, cores, mem);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    for (const auto& seg : res.schedule.segments()) {
      EXPECT_LE(seg.speed, cores[seg.core].max_speed() * (1.0 + 1e-6));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, HeteroMix,
                         ::testing::Values(0.0, 0.25, 0.5, 1.0));

// ---------------------------------------------------------------------------
// Online policy grid: every policy stays feasible across the Table 4 grid
// corners; SDEM-ON never loses to MBKP.

using OnlineParam = std::tuple<int, double>;  // x(ms), alpha_m

class OnlineGrid : public ::testing::TestWithParam<OnlineParam> {};

TEST_P(OnlineGrid, AllPoliciesFeasibleAndOrdered) {
  const auto [x, alpha_m] = GetParam();
  auto cfg = SystemConfig::paper_default();
  cfg.memory.alpha_m = alpha_m;
  SyntheticParams p;
  p.num_tasks = 60;
  p.max_interarrival = x / 1000.0;
  const TaskSet ts = make_synthetic(p, 1000 + x);

  const auto cmp = run_comparison(ts, cfg);
  EXPECT_EQ(cmp.sdem.deadline_misses, 0);
  EXPECT_EQ(cmp.mbkp.deadline_misses, 0);
  EXPECT_LE(cmp.sdem.energy.system_total(),
            cmp.mbkp.energy.system_total() * 1.001);
  EXPECT_LE(cmp.mbkps.energy.system_total(),
            cmp.mbkp.energy.system_total() + 1e-9);

  RaceToIdlePolicy race;
  const auto sim = simulate(ts, cfg, race);
  EXPECT_EQ(sim.deadline_misses, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OnlineGrid,
    ::testing::Combine(::testing::Values(100, 400, 800),
                       ::testing::Values(1.0, 4.0, 8.0)));

// ---------------------------------------------------------------------------
// Cross-cutting invariants.

TEST(AccountingFuzz, CsvRoundTripPreservesEnergy) {
  // Serialize -> parse -> account must be bit-identical on random
  // simulated schedules.
  auto cfg = SystemConfig::paper_default();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SyntheticParams p;
    p.num_tasks = 50;
    p.max_interarrival = 0.200;
    const TaskSet ts = make_synthetic(p, seed * 5);
    SdemOnPolicy pol;
    const auto sim = simulate(ts, cfg, pol);
    const Schedule back = schedule_from_csv(schedule_to_csv(sim.schedule));
    EnergyOptions opts;
    opts.horizon_lo = sim.horizon_lo;
    opts.horizon_hi = sim.horizon_hi;
    EXPECT_EQ(compute_energy(sim.schedule, cfg, opts).system_total(),
              compute_energy(back, cfg, opts).system_total());
  }
}

TEST(AccountingFuzz, DisciplineOrdering) {
  // For any schedule and config: optimal <= always and optimal <= never.
  auto cfg = SystemConfig::paper_default();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SyntheticParams p;
    p.num_tasks = 40;
    p.max_interarrival = 0.150;
    const TaskSet ts = make_synthetic(p, seed * 17);
    MbkpPolicy pol;
    const auto sim = simulate(ts, cfg, pol);
    auto energy = [&](SleepDiscipline d) {
      EnergyOptions o;
      o.memory_gaps = d;
      o.horizon_lo = sim.horizon_lo;
      o.horizon_hi = sim.horizon_hi;
      return compute_energy(sim.schedule, cfg, o).memory_total();
    };
    const double opt = energy(SleepDiscipline::kOptimal);
    EXPECT_LE(opt, energy(SleepDiscipline::kAlways) + 1e-9);
    EXPECT_LE(opt, energy(SleepDiscipline::kNever) + 1e-9);
  }
}

TEST(FailureInjection, ValidatorCatchesCorruptedSchedules) {
  // Corrupt a valid schedule in several ways; the validator must flag all.
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  const TaskSet ts = make_common_release(5, 0.0, 9);
  const auto res = solve_common_release_alpha(ts, cfg);
  ASSERT_TRUE(res.feasible);
  ASSERT_TRUE(validate_schedule(res.schedule, ts, cfg).ok);

  {
    Schedule bad = res.schedule;  // drop a segment: work incomplete
    Schedule dropped;
    for (std::size_t i = 1; i < bad.segments().size(); ++i) {
      dropped.add(bad.segments()[i]);
    }
    EXPECT_FALSE(validate_schedule(dropped, ts, cfg).ok);
  }
  {
    Schedule bad;  // inflate a speed beyond s_up
    for (auto seg : res.schedule.segments()) {
      seg.speed = 3000.0;
      bad.add(seg);
    }
    EXPECT_FALSE(validate_schedule(bad, ts, cfg).ok);
  }
  {
    Schedule bad;  // shift everything past the deadlines
    for (auto seg : res.schedule.segments()) {
      seg.start += 1.0;
      seg.end += 1.0;
      bad.add(seg);
    }
    EXPECT_FALSE(validate_schedule(bad, ts, cfg).ok);
  }
}

}  // namespace
}  // namespace sdem
