// Tests for multi-rank memory accounting.
#include <gtest/gtest.h>

#include "mem/ranks.hpp"
#include "sched/energy.hpp"
#include "test_util.hpp"

namespace sdem {
namespace {

Schedule interleaved() {
  // Cores 0 and 1 alternate so the device-level memory never idles, but
  // each core (rank) individually idles half the time.
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 100.0});
  s.add(Segment{1, 1, 1.0, 2.0, 100.0});
  s.add(Segment{2, 0, 2.0, 3.0, 100.0});
  s.add(Segment{3, 1, 3.0, 4.0, 100.0});
  return s;
}

TEST(Ranks, SingleRankEqualsMonolithicAccounting) {
  MemoryPower mem{4.0, 0.2};
  const auto sched = interleaved();
  const auto r = rank_memory_energy(sched, mem, 1, 2, 0.0, 4.0);
  auto cfg = test::make_cfg(0.0, mem.alpha_m);
  cfg.memory.xi_m = mem.xi_m;
  EnergyOptions opts;
  opts.horizon_lo = 0.0;
  opts.horizon_hi = 4.0;
  const auto e = compute_energy(sched, cfg, opts);
  EXPECT_NEAR(r.total(), e.memory_total(), 1e-12);
}

TEST(Ranks, PerCoreRanksDecoupleIdleTime) {
  MemoryPower mem{4.0, 0.0};  // free transitions to isolate the effect
  const auto sched = interleaved();
  const auto mono = rank_memory_energy(sched, mem, 1, 2, 0.0, 4.0);
  const auto duo = rank_memory_energy(sched, mem, 2, 2, 0.0, 4.0);
  // Monolithic: busy all 4 s at 4 W = 16 J. Two ranks: each 2 W, busy 2 s
  // => 8 J total. The decoupling halves the leakage.
  EXPECT_NEAR(mono.total(), 16.0, 1e-12);
  EXPECT_NEAR(duo.total(), 8.0, 1e-12);
  EXPECT_GT(duo.sleep_time, mono.sleep_time);
}

TEST(Ranks, LeakageConserved) {
  // Fully busy schedule: rank count must not change the energy.
  Schedule s;
  s.add(Segment{0, 0, 0.0, 2.0, 100.0});
  s.add(Segment{1, 1, 0.0, 2.0, 100.0});
  MemoryPower mem{4.0, 0.0};
  for (int ranks : {1, 2}) {
    const auto r = rank_memory_energy(s, mem, ranks, 2, 0.0, 2.0);
    EXPECT_NEAR(r.total(), 8.0, 1e-12) << ranks << " ranks";
  }
}

TEST(Ranks, BreakEvenPerRank) {
  // A 1 s gap on rank 0 only; xi_m above/below the gap flips its decision.
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 100.0});
  s.add(Segment{1, 0, 2.0, 3.0, 100.0});
  s.add(Segment{2, 1, 0.0, 3.0, 100.0});
  MemoryPower nap{4.0, 0.5};
  const auto r1 = rank_memory_energy(s, nap, 2, 2, 0.0, 3.0);
  EXPECT_NEAR(r1.transition, 2.0 * 0.5, 1e-12);  // rank power 2 W * xi_m
  EXPECT_NEAR(r1.sleep_time, 1.0, 1e-12);
  MemoryPower stay{4.0, 2.0};
  const auto r2 = rank_memory_energy(s, stay, 2, 2, 0.0, 3.0);
  EXPECT_NEAR(r2.idle, 2.0 * 1.0, 1e-12);
  EXPECT_EQ(r2.sleep_time, 0.0);
}

TEST(Ranks, IdleRankSleepsWholeHorizon) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 100.0});
  MemoryPower mem{4.0, 0.0};
  const auto r = rank_memory_energy(s, mem, 4, 4, 0.0, 1.0);
  // Only rank 0 is ever busy: 1 W * 1 s; other ranks sleep free.
  EXPECT_NEAR(r.total(), 1.0, 1e-12);
  EXPECT_NEAR(r.sleep_time, 3.0, 1e-12);
}

TEST(Ranks, MoreRanksNeverCostMore) {
  const auto sched = interleaved();
  MemoryPower mem{4.0, 0.3};
  double prev = 1e18;
  for (int ranks : {1, 2, 4}) {
    const auto r = rank_memory_energy(sched, mem, ranks, 2, 0.0, 4.0);
    EXPECT_LE(r.total(), prev + 1e-9) << ranks;
    prev = r.total();
  }
}

}  // namespace
}  // namespace sdem
