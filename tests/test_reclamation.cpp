// Tests for the slack-reclamation simulation (actual < WCET executions).
#include <gtest/gtest.h>

#include "core/online_sdem.hpp"
#include "sched/energy.hpp"
#include "sched/validate.hpp"
#include "sim/event_sim.hpp"
#include "sim/metrics.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::make_cfg;
using test::task;

SystemConfig sim_cfg() {
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.num_cores = 8;
  return cfg;
}

std::map<int, double> uniform_fraction(const TaskSet& ts, double f) {
  std::map<int, double> m;
  for (const auto& t : ts.tasks()) m[t.id] = f;
  return m;
}

TEST(Reclamation, FullFractionMatchesPlainSimulation) {
  SyntheticParams p;
  p.num_tasks = 40;
  p.max_interarrival = 0.250;
  const TaskSet ts = make_synthetic(p, 5);
  SdemOnPolicy a, b;
  const auto plain = simulate(ts, sim_cfg(), a);
  const auto act =
      simulate_with_actuals(ts, sim_cfg(), b, uniform_fraction(ts, 1.0),
                            /*replan_on_completion=*/false);
  EXPECT_EQ(plain.deadline_misses, act.deadline_misses);
  EXPECT_NEAR(plain.schedule.memory_busy_time(),
              act.schedule.memory_busy_time(), 1e-6);
}

TEST(Reclamation, EarlyCompletionShortensExecution) {
  TaskSet ts;
  ts.add(task(0, 0.0, 0.100, 4.0));
  SdemOnPolicy pol;
  const auto res = simulate_with_actuals(ts, sim_cfg(), pol,
                                         uniform_fraction(ts, 0.5), true);
  EXPECT_EQ(res.deadline_misses, 0);
  EXPECT_EQ(res.unfinished, 0);
  EXPECT_NEAR(res.schedule.task_work(0), 2.0, 1e-6);  // half the WCET ran
}

TEST(Reclamation, ReplanOnCompletionTriggersExtraReplans) {
  SyntheticParams p;
  p.num_tasks = 30;
  p.max_interarrival = 0.200;
  const TaskSet ts = make_synthetic(p, 11);
  SdemOnPolicy a, b;
  const auto with = simulate_with_actuals(ts, sim_cfg(), a,
                                          uniform_fraction(ts, 0.6), true);
  const auto without = simulate_with_actuals(ts, sim_cfg(), b,
                                             uniform_fraction(ts, 0.6), false);
  EXPECT_GT(with.replans, without.replans);
  EXPECT_EQ(with.deadline_misses, 0);
  EXPECT_EQ(without.deadline_misses, 0);
}

TEST(Reclamation, LessActualWorkNeverCostsMore) {
  SyntheticParams p;
  p.num_tasks = 60;
  p.max_interarrival = 0.300;
  const TaskSet ts = make_synthetic(p, 23);
  const auto cfg = sim_cfg();
  double prev = 1e18;
  for (double f : {1.0, 0.8, 0.5, 0.3}) {
    SdemOnPolicy pol;
    const auto sim = simulate_with_actuals(ts, cfg, pol,
                                           uniform_fraction(ts, f), true);
    const auto ev =
        evaluate_policy(sim, cfg, SleepDiscipline::kOptimal, "sdem");
    EXPECT_EQ(ev.deadline_misses, 0) << "f " << f;
    EXPECT_LE(ev.energy.system_total(), prev * (1.0 + 1e-9)) << "f " << f;
    prev = ev.energy.system_total();
  }
}

TEST(Reclamation, MixedFractionsFeasible) {
  SyntheticParams p;
  p.num_tasks = 40;
  p.max_interarrival = 0.200;
  const TaskSet ts = make_synthetic(p, 31);
  std::map<int, double> frac;
  for (const auto& t : ts.tasks()) frac[t.id] = (t.id % 3) * 0.3 + 0.4;
  SdemOnPolicy pol;
  const auto sim = simulate_with_actuals(ts, sim_cfg(), pol, frac, true);
  EXPECT_EQ(sim.unfinished, 0);
  EXPECT_EQ(sim.deadline_misses, 0);
  // Executed work per task equals its actual fraction.
  for (const auto& t : ts.tasks()) {
    EXPECT_NEAR(sim.schedule.task_work(t.id), t.work * frac[t.id],
                1e-6 * t.work)
        << "task " << t.id;
  }
}

TEST(Reclamation, ZeroFractionTasksNeverRun) {
  TaskSet ts;
  ts.add(task(0, 0.0, 0.1, 4.0));
  ts.add(task(1, 0.0, 0.1, 4.0));
  std::map<int, double> frac{{0, 0.0}, {1, 1.0}};
  SdemOnPolicy pol;
  const auto sim = simulate_with_actuals(ts, sim_cfg(), pol, frac, true);
  EXPECT_EQ(sim.schedule.task_work(0), 0.0);
  EXPECT_NEAR(sim.schedule.task_work(1), 4.0, 1e-6);
  EXPECT_EQ(sim.deadline_misses, 0);  // the zero-work task needs no time
}

}  // namespace
}  // namespace sdem
