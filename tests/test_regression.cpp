// Regression goldens: pinned energies for fixed seeds and configurations.
//
// These values were produced by the certified solvers (each is covered by
// an optimality proof + brute-force test elsewhere); the goldens exist to
// catch *unintentional* behavior changes — numerical drift, refactoring
// slips, accounting edits. If a deliberate model change moves them, update
// the constants in the same commit that changes the model and say why.
#include <gtest/gtest.h>

#include "baseline/mbkp.hpp"
#include "core/agreeable.hpp"
#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/online_sdem.hpp"
#include "core/transition.hpp"
#include "sim/metrics.hpp"
#include "test_util.hpp"
#include "workload/dspstone.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::make_cfg;

constexpr double kTol = 1e-9;  // relative

TEST(Regression, CommonReleaseAlpha0Golden) {
  const auto cfg = make_cfg(0.0, 4.0, 1900.0);
  const TaskSet ts = make_common_release(10, 0.0, 20240001);
  const auto res = solve_common_release_alpha0(ts, cfg);
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.energy, res.energy, 0.0);  // self-consistency anchor
  // Pin against an independently recomputed golden.
  static constexpr double kGolden = 0.022225737881807726;
  EXPECT_NEAR(res.energy, kGolden, kTol * kGolden);
}

TEST(Regression, CommonReleaseAlphaGolden) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  const TaskSet ts = make_common_release(10, 0.0, 20240002);
  const auto res = solve_common_release_alpha(ts, cfg);
  ASSERT_TRUE(res.feasible);
  static constexpr double kGolden = 0.035645998923286917;
  EXPECT_NEAR(res.energy, kGolden, kTol * kGolden);
}

TEST(Regression, AgreeableGolden) {
  const auto cfg = make_cfg(0.31, 4.0, 1900.0);
  const TaskSet ts = make_agreeable(7, 20240003, 0.080);
  const auto res = solve_agreeable(ts, cfg);
  ASSERT_TRUE(res.feasible);
  static constexpr double kGolden = 0.04806556186333142;
  EXPECT_NEAR(res.energy, kGolden, 1e-6 * kGolden);
}

TEST(Regression, TransitionGolden) {
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.memory.xi_m = 0.040;
  cfg.core.xi = 0.002;
  const TaskSet ts = make_common_release(8, 0.0, 20240004);
  const auto res = solve_common_release_transition(ts, cfg);
  ASSERT_TRUE(res.feasible);
  static constexpr double kGolden = 0.19737380319771086;
  EXPECT_NEAR(res.energy, kGolden, kTol * kGolden);
}

TEST(Regression, OnlineComparisonGolden) {
  auto cfg = SystemConfig::paper_default();
  SyntheticParams p;
  p.num_tasks = 80;
  p.max_interarrival = 0.400;
  const auto cmp = run_comparison(make_synthetic(p, 20240005), cfg);
  static constexpr double kMbkp = 67.438861792797169;
  static constexpr double kSdem = 12.138246276835062;
  EXPECT_NEAR(cmp.mbkp.energy.system_total(), kMbkp, 1e-6 * kMbkp);
  EXPECT_NEAR(cmp.sdem.energy.system_total(), kSdem, 1e-6 * kSdem);
}

TEST(Regression, DspstoneTraceGolden) {
  DspstoneParams p;
  p.num_tasks = 64;
  p.utilization_u = 5.0;
  const TaskSet ts = make_dspstone(p, 20240006);
  // Workload structure is part of the contract: total megacycles.
  static constexpr double kTotalWork = 41.057589999999983;
  EXPECT_NEAR(ts.total_work(), kTotalWork, 1e-9 * kTotalWork);
}

}  // namespace
}  // namespace sdem
