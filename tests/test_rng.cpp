// Tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace sdem {
namespace {

TEST(SplitMix, Deterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(99);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);  // mean of U(0,1)
}

TEST(Xoshiro, UniformRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Xoshiro, UniformIntInclusive) {
  Xoshiro256 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 6);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace sdem
