// Tests for the schedule representation and interval arithmetic.
#include <gtest/gtest.h>

#include "sched/schedule.hpp"

namespace sdem {
namespace {

TEST(MergeIntervals, MergesOverlapsAndTouching) {
  auto m = merge_intervals({{0.0, 1.0}, {0.5, 2.0}, {2.0, 3.0}, {5.0, 6.0}});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(m[0].hi, 3.0);
  EXPECT_DOUBLE_EQ(m[1].lo, 5.0);
}

TEST(MergeIntervals, DropsEmpty) {
  auto m = merge_intervals({{1.0, 1.0}, {2.0, 1.5}});
  EXPECT_TRUE(m.empty());
}

TEST(MergeIntervals, UnsortedInput) {
  auto m = merge_intervals({{5.0, 6.0}, {0.0, 1.0}});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0].lo, 0.0);
}

Schedule two_core_schedule() {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 100.0});
  s.add(Segment{1, 1, 0.5, 2.0, 200.0});
  s.add(Segment{0, 0, 3.0, 4.0, 100.0});  // second burst of task 0
  return s;
}

TEST(Schedule, CoresUsed) {
  EXPECT_EQ(two_core_schedule().cores_used(), 2);
  EXPECT_EQ(Schedule{}.cores_used(), 0);
}

TEST(Schedule, CoreBusyIntervals) {
  const auto s = two_core_schedule();
  const auto b0 = s.core_busy(0);
  ASSERT_EQ(b0.size(), 2u);
  EXPECT_DOUBLE_EQ(b0[0].hi, 1.0);
  EXPECT_DOUBLE_EQ(b0[1].lo, 3.0);
  EXPECT_EQ(s.core_busy(1).size(), 1u);
}

TEST(Schedule, MemoryBusyIsUnion) {
  const auto s = two_core_schedule();
  const auto mb = s.memory_busy();
  ASSERT_EQ(mb.size(), 2u);
  EXPECT_DOUBLE_EQ(mb[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(mb[0].hi, 2.0);
  EXPECT_DOUBLE_EQ(s.memory_busy_time(), 3.0);
}

TEST(Schedule, MemorySleepTimeWithinHorizon) {
  const auto s = two_core_schedule();
  // Horizon [0, 5]: busy 3 => sleep 2.
  EXPECT_DOUBLE_EQ(s.memory_sleep_time(0.0, 5.0), 2.0);
  // Clipped horizon [0.5, 3.5]: busy [0.5,2] + [3,3.5] = 2 => sleep 1.
  EXPECT_DOUBLE_EQ(s.memory_sleep_time(0.5, 3.5), 1.0);
}

TEST(Schedule, TaskWorkAccumulates) {
  const auto s = two_core_schedule();
  EXPECT_DOUBLE_EQ(s.task_work(0), 100.0 * 1.0 + 100.0 * 1.0);
  EXPECT_DOUBLE_EQ(s.task_work(1), 200.0 * 1.5);
  EXPECT_DOUBLE_EQ(s.task_work(42), 0.0);
}

TEST(Schedule, StartEndTimes) {
  const auto s = two_core_schedule();
  EXPECT_DOUBLE_EQ(s.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(s.end_time(), 4.0);
}

TEST(Schedule, ByTaskSorted) {
  const auto s = two_core_schedule();
  const auto m = s.by_task();
  ASSERT_EQ(m.at(0).size(), 2u);
  EXPECT_LT(m.at(0)[0].start, m.at(0)[1].start);
}

TEST(Segment, WorkAndDuration) {
  const Segment seg{0, 0, 1.0, 3.0, 50.0};
  EXPECT_DOUBLE_EQ(seg.duration(), 2.0);
  EXPECT_DOUBLE_EQ(seg.work(), 100.0);
}

}  // namespace
}  // namespace sdem
