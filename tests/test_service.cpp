// Service-layer tests: wire-protocol validation, online/replay semantics,
// and the determinism contracts from docs/service.md —
//
//   * replay equals batch: a Service fed an arrival stream in replay mode
//     (lazy commits) finalizes to byte-identical SimResults to simulate()
//     and to the frozen simulate_reference() oracle;
//   * shard invariance: the per-island results do not depend on --shards;
//   * live mode: eager per-SUBMIT commits change the replan count but not
//     one byte of the schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/mbkp.hpp"
#include "core/online_sdem.hpp"
#include "obs/obs.hpp"
#include "sched/trace_io.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "sim/event_sim.hpp"
#include "sim/sim_reference.hpp"
#include "support/thread_pool.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sdem;
using namespace sdem::service;

// ---------------------------------------------------------------- protocol

TEST(ServiceProtocol, RejectsMalformedRequests) {
  const struct {
    const char* line;
    const char* why;
  } cases[] = {
      {"not json", "parse"},
      {"{\"op\":\"SUBMIT\",", "parse"},
      {"[1,2,3]", "object"},
      {"{}", "op"},
      {"{\"op\":7}", "op"},
      {"{\"op\":\"NOPE\"}", "unknown op"},
      {"{\"op\":\"SUBMIT\"}", "island"},
      {"{\"op\":\"SUBMIT\",\"island\":-1}", "island"},
      {"{\"op\":\"SUBMIT\",\"island\":0.5}", "island"},
      {"{\"op\":\"SUBMIT\",\"island\":0}", "task"},
      {"{\"op\":\"SUBMIT\",\"island\":0,\"task\":3}", "task"},
      {"{\"op\":\"SUBMIT\",\"island\":0,\"task\":{}}", "id"},
      {"{\"op\":\"SUBMIT\",\"island\":0,\"task\":{\"id\":1,\"release\":0,"
       "\"deadline\":1}}",
       "work"},
      {"{\"op\":\"SUBMIT\",\"island\":0,\"task\":{\"id\":1,\"release\":0,"
       "\"deadline\":1,\"work\":-2}}",
       "work"},
      {"{\"op\":\"SUBMIT\",\"island\":0,\"task\":{\"id\":1,\"release\":1,"
       "\"deadline\":1,\"work\":5}}",
       "deadline"},
      {"{\"op\":\"SUBMIT\",\"island\":0,\"task\":{\"id\":1.5,\"release\":0,"
       "\"deadline\":1,\"work\":5}}",
       "id"},
      {"{\"op\":\"QUERY\"}", "island"},
  };
  for (const auto& c : cases) {
    const Parsed p = parse_request(c.line);
    EXPECT_FALSE(p.ok) << c.line;
    EXPECT_NE(p.error.find(c.why), std::string::npos)
        << c.line << " -> " << p.error;
  }
}

TEST(ServiceProtocol, AcceptsWellFormedRequests) {
  Parsed p = parse_request(
      "{\"op\":\"SUBMIT\",\"island\":2,\"task\":{\"id\":7,\"release\":0.25,"
      "\"deadline\":1.5,\"work\":320.5}}");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.op, Op::kSubmit);
  EXPECT_EQ(p.request.island, 2);
  EXPECT_EQ(p.request.task.id, 7);
  EXPECT_DOUBLE_EQ(p.request.task.release, 0.25);
  EXPECT_DOUBLE_EQ(p.request.task.deadline, 1.5);
  EXPECT_DOUBLE_EQ(p.request.task.work, 320.5);

  p = parse_request("{\"op\":\"QUERY\",\"island\":0}");
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.request.op, Op::kQuery);
  EXPECT_TRUE(parse_request("{\"op\":\"STATS\"}").ok);
  EXPECT_TRUE(parse_request("{\"op\":\"SHUTDOWN\"}").ok);
}

TEST(ServiceProtocol, PeekFindsTheRoutingKey) {
  const Peeked p = peek_request(
      "{\"op\":\"SUBMIT\",\"island\":2,\"task\":{\"id\":7,\"release\":0.25,"
      "\"deadline\":1.5,\"work\":320.5}}");
  EXPECT_TRUE(p.routable());
  EXPECT_EQ(p.op, Op::kSubmit);
  EXPECT_EQ(p.island, 2);

  // Whitespace, member order, and nested braces inside strings don't fool
  // the scanner.
  const Peeked q = peek_request(
      "  { \"note\" : \"has } and { and \\\" inside\" ,\n"
      "    \"island\" : 5 , \"op\" : \"QUERY\" }");
  EXPECT_TRUE(q.routable());
  EXPECT_EQ(q.op, Op::kQuery);
  EXPECT_EQ(q.island, 5);
}

TEST(ServiceProtocol, PeekMatchesFullParserOnDuplicateKeys) {
  // Json::parse keeps the last duplicate key; the peek must agree, or a
  // crafted line could be routed to one shard and parsed as another
  // island's request.
  const std::string line =
      "{\"op\":\"SUBMIT\",\"island\":1,\"island\":6,"
      "\"task\":{\"id\":1,\"release\":0,\"deadline\":1,\"work\":5}}";
  const Peeked p = peek_request(line);
  const Parsed full = parse_request(line);
  ASSERT_TRUE(full.ok);
  ASSERT_TRUE(p.routable());
  EXPECT_EQ(p.island, full.request.island);
  EXPECT_EQ(p.island, 6);
}

TEST(ServiceProtocol, PeekFallsBackConservatively) {
  // Not routable ≠ malformed: these must fall back to the full parser.
  EXPECT_FALSE(peek_request("{\"op\":\"SUBMIT\",\"island\":2.0}").routable())
      << "float island is full-parser territory";
  EXPECT_FALSE(peek_request("{\"op\":\"SUBMIT\",\"island\":2e1}").routable());
  EXPECT_FALSE(peek_request("{\"op\":\"SUBMIT\",\"island\":-3}").routable());
  EXPECT_FALSE(peek_request("{\"op\":\"STATS\"}").routable())
      << "STATS is service-wide, never shard-routable";
  EXPECT_FALSE(peek_request("{\"op\":\"SHUTDOWN\"}").routable());
  EXPECT_FALSE(peek_request("{\"op\":\"NOPE\",\"island\":1}").routable())
      << "unknown op: let parse_request produce the diagnostic";
  EXPECT_FALSE(peek_request("{\"island\":1}").routable());
  EXPECT_FALSE(peek_request("not json").routable());
  EXPECT_FALSE(peek_request("{\"op\":\"SUBMIT\",\"island\":").routable());
  EXPECT_FALSE(
      peek_request("{\"op\":\"SUBMIT\",\"island\":99999999999}").routable())
      << "overlong island literal";
}

// ----------------------------------------------------------- test harness

/// Synchronous single-threaded driver: routes requests inline (null pool)
/// and keeps every response by seq.
struct InlineHarness {
  explicit InlineHarness(ServiceOptions opt)
      : svc(std::move(opt), nullptr, [this](const Request& r, Json resp) {
          responses.emplace(r.seq, std::move(resp));
        }) {}

  Json submit(int island, int id, double release, double deadline,
              double work) {
    Request r;
    r.op = Op::kSubmit;
    r.island = island;
    r.task = Task{id, release, deadline, work};
    r.seq = next_seq++;
    svc.route(std::move(r));
    return responses.at(next_seq - 1);
  }

  Json query(int island) {
    Request r;
    r.op = Op::kQuery;
    r.island = island;
    r.seq = next_seq++;
    svc.route(std::move(r));
    return responses.at(next_seq - 1);
  }

  std::map<std::uint64_t, Json> responses;
  std::uint64_t next_seq = 0;
  Service svc;
};

ServiceOptions eager_opts() {
  ServiceOptions o;
  o.eager = true;
  return o;
}

// ----------------------------------------------------- semantic validation

TEST(ServiceSemantics, RejectsDuplicateTaskIdPerIsland) {
  InlineHarness h(eager_opts());
  EXPECT_TRUE(h.submit(0, 1, 0.0, 0.5, 100.0).at("ok").as_bool());
  const Json dup = h.submit(0, 1, 0.1, 0.9, 50.0);
  EXPECT_FALSE(dup.at("ok").as_bool());
  EXPECT_NE(dup.at("error").as_string().find("duplicate"), std::string::npos);
  // Same id on a different island is a different task.
  EXPECT_TRUE(h.submit(1, 1, 0.1, 0.9, 50.0).at("ok").as_bool());
}

TEST(ServiceSemantics, RejectsUnknownIslandQuery) {
  InlineHarness h(eager_opts());
  const Json resp = h.query(42);
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_NE(resp.at("error").as_string().find("unknown island"),
            std::string::npos);
}

TEST(ServiceSemantics, RejectsOutOfOrderArrival) {
  InlineHarness h(eager_opts());
  EXPECT_TRUE(h.submit(0, 1, 1.0, 2.0, 100.0).at("ok").as_bool());
  const Json late = h.submit(0, 2, 0.5, 2.0, 100.0);
  EXPECT_FALSE(late.at("ok").as_bool());
  EXPECT_NE(late.at("error").as_string().find("out of order"),
            std::string::npos);
  // The rejected task must not poison the island: a later id reusing it
  // succeeds (the duplicate guard was rolled back).
  EXPECT_TRUE(h.submit(0, 2, 1.5, 3.0, 80.0).at("ok").as_bool());
}

TEST(ServiceSemantics, QueryReportsThePlan) {
  InlineHarness h(eager_opts());
  h.submit(3, 9, 0.0, 1.0, 500.0);
  const Json q = h.query(3);
  ASSERT_TRUE(q.at("ok").as_bool());
  EXPECT_EQ(q.at("pending").as_number(), 1);
  EXPECT_EQ(q.at("replans").as_number(), 1);
  const Json& plan = q.at("plan");
  ASSERT_GE(plan.size(), 1u);
  EXPECT_EQ(plan.at(0u).at("task").as_number(), 9);
}

TEST(ServiceSemantics, StatsCountsRequestsAndShards) {
  ServiceOptions opt = eager_opts();
  opt.shards = 2;
  InlineHarness h(opt);
  h.submit(0, 1, 0.0, 1.0, 100.0);
  h.submit(1, 1, 0.0, 1.0, 100.0);
  h.submit(0, 2, 0.2, 1.2, 100.0);
  const Json stats = h.svc.stats(99);
  ASSERT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("requests").as_number(), 3);
  EXPECT_EQ(stats.at("islands").as_number(), 2);
  ASSERT_EQ(stats.at("shards").size(), 2u);
  if (obs::compiled()) {
    // Sustained-load latency reporting: the runtime-domain histogram must
    // surface per-shard p50/p99 replan latency.
    const Json& shard0 = stats.at("shards").at(0u);
    ASSERT_TRUE(shard0.has("replan_latency"));
    EXPECT_GE(shard0.at("replan_latency").at("p99_ns").as_number(),
              shard0.at("replan_latency").at("p50_ns").as_number());
    EXPECT_GT(shard0.at("replan_latency").at("count").as_number(), 0);
  }
}

TEST(ServiceProtocol, MetricsGrammarRoundTrips) {
  EXPECT_STREQ(op_name(Op::kMetrics), "METRICS");
  const Parsed p = parse_request("{\"op\":\"METRICS\"}");
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.request.op, Op::kMetrics);
  // The peek recognizes the verb but never routes it: METRICS is a
  // service-wide barrier, dispatched after a full parse like STATS.
  const Peeked peek = peek_request("{\"op\":\"METRICS\"}");
  EXPECT_TRUE(peek.has_op);
  EXPECT_EQ(peek.op, Op::kMetrics);
  EXPECT_FALSE(peek.routable());
}

TEST(ServiceSemantics, MetricsExposesPrometheusText) {
  ServiceOptions opt = eager_opts();
  opt.shards = 2;
  InlineHarness h(opt);
  h.submit(0, 1, 0.0, 1.0, 100.0);
  h.submit(1, 1, 0.0, 1.0, 100.0);
  const Json m = h.svc.metrics(7);
  ASSERT_TRUE(m.at("ok").as_bool());
  EXPECT_EQ(m.at("op").as_string(), "METRICS");
  EXPECT_EQ(m.at("seq").as_number(), 7);
  EXPECT_EQ(m.at("obs_compiled").as_bool(), obs::compiled());
  EXPECT_GT(m.at("uptime_s").as_number(), 0.0);
  EXPECT_EQ(m.at("requests").as_number(), 2);
  EXPECT_EQ(m.at("content_type").as_string(), "text/plain; version=0.0.4");

  // Exposition grammar: every non-comment line is `name[{labels}] value`
  // with a fully-consumed numeric value.
  const std::string& body = m.at("body").as_string();
  std::size_t start = 0;
  int lines = 0;
  while (start < body.size()) {
    std::size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    ++lines;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string name = line.substr(0, sp);
    ASSERT_FALSE(name.empty()) << line;
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      EXPECT_NE(name.find('=', brace), std::string::npos) << line;
    }
    std::size_t consumed = 0;
    const double v = std::stod(line.substr(sp + 1), &consumed);
    EXPECT_EQ(consumed, line.size() - sp - 1) << line;
    EXPECT_TRUE(v == v) << line;  // no NaNs in the exposition
  }
  EXPECT_GT(lines, 0);

  const auto npos = std::string::npos;
  EXPECT_NE(body.find("sdem_uptime_seconds "), npos);
  EXPECT_NE(body.find("sdem_requests_total 2"), npos);
  EXPECT_NE(body.find("sdem_islands 2"), npos);
  EXPECT_NE(body.find("sdem_shard_requests_total{shard=\"0\"} "), npos);
  EXPECT_NE(body.find("sdem_ring_occupancy{shard=\"1\"} "), npos);
  EXPECT_NE(body.find("sdem_backpressure_stalls_total{shard=\"0\"} "), npos);
  if (obs::compiled()) {
    EXPECT_NE(body.find("sdem_obs_compiled 1"), npos);
    EXPECT_NE(body.find("sdem_replan_latency_seconds{shard=\"0\","
                        "quantile=\"0.99\"} "),
              npos);
    EXPECT_NE(body.find("sdem_e2e_latency_seconds_count{shard=\"1\"} "),
              npos);
    EXPECT_NE(body.find("sdem_governor_ladder_aborts_total "), npos);
  } else {
    // Inert stub: obs-free families only.
    EXPECT_NE(body.find("sdem_obs_compiled 0"), npos);
    EXPECT_EQ(body.find("sdem_replan_latency_seconds"), npos);
    EXPECT_EQ(body.find("sdem_e2e_latency_seconds"), npos);
  }
}

// ------------------------------------------------------------ determinism

/// A deterministic multi-island arrival stream: per island a synthetic
/// trace (non-decreasing releases), interleaved globally by release.
std::vector<Request> make_stream(int islands, int tasks_per_island,
                                 std::uint64_t seed) {
  std::vector<Request> reqs;
  for (int isl = 0; isl < islands; ++isl) {
    SyntheticParams p;
    p.num_tasks = tasks_per_island;
    p.max_interarrival = 0.050;
    const TaskSet ts = make_synthetic(p, seed * 97 + isl);
    for (const Task& t : ts.tasks()) {
      Request r;
      r.op = Op::kSubmit;
      r.island = isl;
      r.task = t;
      reqs.push_back(r);
    }
  }
  std::stable_sort(reqs.begin(), reqs.end(),
                   [](const Request& a, const Request& b) {
                     return a.task.release < b.task.release;
                   });
  for (std::size_t i = 0; i < reqs.size(); ++i) reqs[i].seq = i;
  return reqs;
}

std::vector<Service::IslandResult> run_stream(
    const std::vector<Request>& reqs, const std::string& policy, int shards,
    bool eager, ThreadPool* pool) {
  ServiceOptions opt;
  opt.policy = policy;
  opt.shards = shards;
  opt.eager = eager;
  std::mutex mu;
  std::vector<std::string> errors;
  Service svc(opt, pool, [&](const Request& r, Json resp) {
    if (!resp.at("ok").as_bool()) {
      std::lock_guard<std::mutex> lock(mu);
      errors.push_back("seq " + std::to_string(r.seq) + ": " +
                       resp.at("error").as_string());
    }
  });
  for (const Request& r : reqs) svc.route(r);
  auto out = svc.finalize_all();
  EXPECT_TRUE(errors.empty()) << errors.front();
  return out;
}

/// The byte surface of one island's result.
std::string result_bytes(const Service::IslandResult& r) {
  return schedule_to_csv(r.result.schedule) + "|replans=" +
         std::to_string(r.result.replans) + "|misses=" +
         std::to_string(r.result.deadline_misses) + "|unfinished=" +
         std::to_string(r.result.unfinished);
}

TEST(ServiceDeterminism, ReplayMatchesBatchAndFrozenReference) {
  const auto reqs = make_stream(/*islands=*/4, /*tasks_per_island=*/60, 5);
  ThreadPool pool(4);
  const auto islands = run_stream(reqs, "sdem-on", 4, /*eager=*/false, &pool);
  ASSERT_EQ(islands.size(), 4u);
  for (const auto& isl : islands) {
    const TaskSet ts(isl.tasks);
    // Batch simulator, same policy implementation.
    SdemOnPolicy batch_policy;
    const SimResult batch = simulate(ts, SystemConfig::paper_default(),
                                     batch_policy);
    EXPECT_EQ(schedule_to_csv(isl.result.schedule),
              schedule_to_csv(batch.schedule))
        << "island " << isl.island;
    EXPECT_EQ(isl.result.replans, batch.replans);
    EXPECT_EQ(isl.result.deadline_misses, batch.deadline_misses);
    EXPECT_EQ(isl.result.unfinished, batch.unfinished);
    EXPECT_EQ(isl.result.horizon_lo, batch.horizon_lo);
    EXPECT_EQ(isl.result.horizon_hi, batch.horizon_hi);
    // Frozen oracle (docs/testing.md): the reference simulator must agree
    // byte-for-byte too.
    SdemOnReferencePolicy ref_policy;
    const SimResult ref =
        simulate_reference(ts, SystemConfig::paper_default(), ref_policy);
    EXPECT_EQ(schedule_to_csv(isl.result.schedule),
              schedule_to_csv(ref.schedule))
        << "island " << isl.island;
  }
}

TEST(ServiceDeterminism, ShardCountDoesNotChangeResults) {
  const auto reqs = make_stream(/*islands=*/5, /*tasks_per_island=*/40, 9);
  const auto serial = run_stream(reqs, "sdem-on", 1, false, nullptr);
  ThreadPool pool(4);
  const auto sharded = run_stream(reqs, "sdem-on", 4, false, &pool);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].island, sharded[i].island);
    EXPECT_EQ(result_bytes(serial[i]), result_bytes(sharded[i]))
        << "island " << serial[i].island;
  }
}

TEST(ServiceDeterminism, EagerCommitsKeepScheduleBytes) {
  // Live mode commits on every SUBMIT (same-instant batches split into
  // several replans); the schedule must not change by a byte. Include
  // same-release pairs to exercise exactly that splitting.
  std::vector<Request> reqs;
  int id = 0;
  const double releases[] = {0.0, 0.0, 0.1, 0.1, 0.1, 0.25, 0.4, 0.4};
  for (const double rel : releases) {
    Request r;
    r.op = Op::kSubmit;
    r.island = 0;
    r.task = Task{id, rel, rel + 0.3 + 0.05 * id, 40.0 + 13.0 * id};
    r.seq = static_cast<std::uint64_t>(id);
    ++id;
    reqs.push_back(r);
  }
  const auto lazy = run_stream(reqs, "mbkp", 1, /*eager=*/false, nullptr);
  const auto eager = run_stream(reqs, "mbkp", 1, /*eager=*/true, nullptr);
  ASSERT_EQ(lazy.size(), 1u);
  ASSERT_EQ(eager.size(), 1u);
  EXPECT_EQ(schedule_to_csv(lazy[0].result.schedule),
            schedule_to_csv(eager[0].result.schedule));
  EXPECT_EQ(lazy[0].result.deadline_misses, eager[0].result.deadline_misses);
  // Eager mode replans once per SUBMIT, lazy once per distinct instant
  // (releases 0.0, 0.1, 0.25, 0.4).
  EXPECT_EQ(eager[0].result.replans, 8);
  EXPECT_EQ(lazy[0].result.replans, 4);

  MbkpPolicy batch_policy;
  std::vector<Task> tasks;
  for (const auto& r : reqs) tasks.push_back(r.task);
  const SimResult batch =
      simulate(TaskSet(tasks), SystemConfig::paper_default(), batch_policy);
  EXPECT_EQ(schedule_to_csv(batch.schedule),
            schedule_to_csv(eager[0].result.schedule));
}

// ---------------------------------------------------------- parse-on-shard

/// Wire rendering of a SUBMIT request (what the daemon's ingest sees).
std::string submit_wire_line(const Request& r) {
  Json task = Json::object();
  task.set("id", r.task.id);
  task.set("release", r.task.release);
  task.set("deadline", r.task.deadline);
  task.set("work", r.task.work);
  Json req = Json::object();
  req.set("op", "SUBMIT");
  req.set("island", r.island);
  req.set("task", std::move(task));
  return req.dump(0);
}

/// Same stream as run_stream, but shipped as raw lines through the
/// parse-on-shard path (peek routing + shard-side parse_request).
std::vector<Service::IslandResult> run_stream_raw(
    const std::vector<Request>& reqs, const std::string& policy, int shards,
    ThreadPool* pool) {
  ServiceOptions opt;
  opt.policy = policy;
  opt.shards = shards;
  opt.eager = false;
  std::mutex mu;
  std::vector<std::string> errors;
  Service svc(opt, pool, [&](const Request& r, Json resp) {
    if (!resp.at("ok").as_bool()) {
      std::lock_guard<std::mutex> lock(mu);
      errors.push_back("seq " + std::to_string(r.seq) + ": " +
                       resp.at("error").as_string());
    }
  });
  for (const Request& r : reqs) {
    std::string line = submit_wire_line(r);
    const Peeked peek = peek_request(line);
    EXPECT_TRUE(peek.routable());
    svc.route_raw(peek.island, peek.op, std::move(line), r.seq, 0, r.seq);
  }
  auto out = svc.finalize_all();
  EXPECT_TRUE(errors.empty()) << errors.front();
  return out;
}

TEST(ServiceDeterminism, ParseOnShardIsByteIdenticalAcrossShardCounts) {
  // The tentpole determinism contract: raw lines routed by peek and parsed
  // on the shard workers finalize to byte-identical per-island results at
  // any shard count — and to the parsed-route path.
  const auto reqs = make_stream(/*islands=*/5, /*tasks_per_island=*/40, 13);
  const auto parsed = run_stream(reqs, "sdem-on", 1, false, nullptr);
  const auto raw1 = run_stream_raw(reqs, "sdem-on", 1, nullptr);
  ThreadPool pool(4);
  const auto raw4 = run_stream_raw(reqs, "sdem-on", 4, &pool);
  ASSERT_EQ(parsed.size(), raw1.size());
  ASSERT_EQ(parsed.size(), raw4.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].island, raw1[i].island);
    EXPECT_EQ(parsed[i].island, raw4[i].island);
    EXPECT_EQ(result_bytes(parsed[i]), result_bytes(raw1[i]))
        << "island " << parsed[i].island;
    EXPECT_EQ(result_bytes(parsed[i]), result_bytes(raw4[i]))
        << "island " << parsed[i].island;
  }
}

TEST(ServiceSemantics, MalformedRawLineYieldsErrorEnvelope) {
  // A line whose routing key peeks fine but whose payload fails the full
  // parse: the shard worker must answer with the uniform error envelope
  // carrying the ingest-assigned seq.
  std::map<std::uint64_t, Json> responses;
  ServiceOptions opt;
  Service svc(opt, nullptr, [&](const Request& r, Json resp) {
    responses.emplace(r.seq, std::move(resp));
  });
  const std::string bad =
      "{\"op\":\"SUBMIT\",\"island\":0,\"task\":{\"id\":1,\"release\":0,"
      "\"deadline\":1,\"work\":-2}}";
  const Peeked peek = peek_request(bad);
  ASSERT_TRUE(peek.routable());
  svc.route_raw(peek.island, peek.op, bad, /*seq=*/7, 0, 0);
  svc.flush();
  svc.drain_all();
  ASSERT_EQ(responses.count(7), 1u);
  EXPECT_FALSE(responses.at(7).at("ok").as_bool());
  EXPECT_EQ(responses.at(7).at("seq").as_number(), 7);
  EXPECT_NE(responses.at(7).at("error").as_string().find("work"),
            std::string::npos);
}

TEST(ServiceSemantics, MisroutedRawLineIsRejectedNotCrossRouted) {
  // Defense in depth: if a caller routes a raw line to the wrong shard
  // (possible only with a buggy or adversarial peek), the shard must
  // reject it rather than touch an island another shard owns.
  std::map<std::uint64_t, Json> responses;
  ServiceOptions opt;
  opt.shards = 2;
  Service svc(opt, nullptr, [&](const Request& r, Json resp) {
    responses.emplace(r.seq, std::move(resp));
  });
  const std::string line =
      "{\"op\":\"SUBMIT\",\"island\":1,\"task\":{\"id\":1,\"release\":0,"
      "\"deadline\":1,\"work\":5}}";
  // Deliberately claim island 0 (shard 0); the line parses to island 1
  // (shard 1).
  svc.route_raw(/*island=*/0, Op::kSubmit, line, /*seq=*/3, 0, 0);
  svc.flush();
  svc.drain_all();
  ASSERT_EQ(responses.count(3), 1u);
  EXPECT_FALSE(responses.at(3).at("ok").as_bool());
  EXPECT_NE(responses.at(3).at("error").as_string().find("misrouted"),
            std::string::npos);
  // Island 1 must be untouched: a fresh, correctly-routed submit with the
  // same id succeeds (no duplicate registered by the misroute).
  const Peeked peek = peek_request(line);
  svc.route_raw(peek.island, peek.op, line, /*seq=*/4, 0, 1);
  svc.flush();
  svc.drain_all();
  ASSERT_EQ(responses.count(4), 1u);
  EXPECT_TRUE(responses.at(4).at("ok").as_bool());
}

// -------------------------------------------------------------- StreamSim

TEST(StreamSim, DrivesLikeBatchAndSupportsAdvance) {
  SyntheticParams p;
  p.num_tasks = 50;
  const TaskSet ts = make_synthetic(p, 21);
  const SystemConfig cfg = SystemConfig::paper_default();

  SdemOnPolicy batch_policy;
  const SimResult batch = simulate(ts, cfg, batch_policy);

  SdemOnPolicy stream_policy;
  StreamSim sim(cfg, stream_policy, cfg.num_cores);
  const TaskSet sorted = ts.sorted_by_release();
  for (const Task& t : sorted.tasks()) {
    sim.inject_arrival(t);
    // advance_to at the batch instant commits it; the interleaved clock
    // motion must not perturb the schedule (accounting stays lazy).
    sim.advance_to(t.release);
    EXPECT_DOUBLE_EQ(sim.now(), t.release);
  }
  const SimResult& streamed = sim.finalize();
  EXPECT_EQ(schedule_to_csv(streamed.schedule),
            schedule_to_csv(batch.schedule));
  EXPECT_EQ(streamed.replans, batch.replans);
  EXPECT_EQ(streamed.deadline_misses, batch.deadline_misses);
  EXPECT_EQ(streamed.horizon_lo, batch.horizon_lo);
  EXPECT_EQ(streamed.horizon_hi, batch.horizon_hi);
}

TEST(StreamSim, ResetStartsAFreshRun) {
  const SystemConfig cfg = SystemConfig::paper_default();
  SdemOnPolicy policy;
  StreamSim sim(cfg, policy, cfg.num_cores);
  sim.inject_arrival(Task{1, 0.0, 0.5, 120.0});
  const SimResult first = sim.finalize();  // copy before reset
  EXPECT_EQ(first.unfinished, 0);

  sim.reset();
  sim.inject_arrival(Task{1, 0.0, 0.5, 120.0});
  const SimResult& second = sim.finalize();
  EXPECT_EQ(schedule_to_csv(first.schedule),
            schedule_to_csv(second.schedule));
  EXPECT_EQ(first.replans, second.replans);
}

TEST(StreamSim, ThrowsOnRegressions) {
  const SystemConfig cfg = SystemConfig::paper_default();
  SdemOnPolicy policy;
  StreamSim sim(cfg, policy, cfg.num_cores);
  sim.inject_arrival(Task{1, 1.0, 2.0, 100.0});
  sim.commit();
  EXPECT_THROW(sim.inject_arrival(Task{2, 0.5, 2.0, 100.0}),
               std::invalid_argument);
  EXPECT_THROW(sim.advance_to(0.25), std::invalid_argument);
  sim.finalize();
  EXPECT_THROW(sim.inject_arrival(Task{3, 5.0, 6.0, 10.0}),
               std::logic_error);
}

}  // namespace
