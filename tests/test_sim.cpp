// Tests for the discrete-event online simulator.
#include <gtest/gtest.h>

#include "sim/event_sim.hpp"
#include "test_util.hpp"

namespace sdem {
namespace {

using test::make_cfg;
using test::task;

/// Trivial policy: run each pending task immediately at its filled speed of
/// the remaining window.
class RunNowPolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "run-now"; }
  std::vector<Segment> replan(double now,
                              const std::vector<PendingTask>& pending,
                              const SystemConfig& cfg) override {
    (void)cfg;
    std::vector<Segment> plan;
    for (const auto& p : pending) {
      const double len = p.task.deadline - now;
      plan.push_back(Segment{p.task.id, p.core, now, now + len,
                             p.remaining / len});
    }
    return plan;
  }
};

/// Policy that never schedules anything (for unfinished-task accounting).
class LazyPolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "lazy"; }
  std::vector<Segment> replan(double, const std::vector<PendingTask>&,
                              const SystemConfig&) override {
    return {};
  }
};

TEST(Sim, SingleTaskRunsToCompletion) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 100.0));
  RunNowPolicy pol;
  const auto res = simulate(ts, make_cfg(0.0, 4.0, 0.0), pol);
  EXPECT_EQ(res.deadline_misses, 0);
  EXPECT_EQ(res.unfinished, 0);
  EXPECT_EQ(res.replans, 1);
  EXPECT_NEAR(res.schedule.task_work(0), 100.0, 1e-6);
}

TEST(Sim, ArrivalClipsThePlan) {
  // Second task arrives mid-flight: the first plan is clipped at t=0.5 and
  // replanned; total work must still be conserved.
  TaskSet ts;
  ts.add(task(0, 0.0, 2.0, 100.0));
  ts.add(task(1, 0.5, 2.5, 50.0));
  RunNowPolicy pol;
  const auto res = simulate(ts, make_cfg(0.0, 4.0, 0.0), pol);
  EXPECT_EQ(res.replans, 2);
  EXPECT_EQ(res.unfinished, 0);
  EXPECT_NEAR(res.schedule.task_work(0), 100.0, 1e-6);
  EXPECT_NEAR(res.schedule.task_work(1), 50.0, 1e-6);
  EXPECT_EQ(res.deadline_misses, 0);
}

TEST(Sim, RoundRobinCoreAssignment) {
  auto cfg = make_cfg(0.0, 4.0, 0.0);
  cfg.num_cores = 2;
  TaskSet ts;
  for (int i = 0; i < 4; ++i) ts.add(task(i, 0.1 * i, 0.1 * i + 1.0, 10.0));
  RunNowPolicy pol;
  const auto res = simulate(ts, cfg, pol);
  // Cores alternate 0,1,0,1 in arrival order.
  std::map<int, int> core_of;
  for (const auto& seg : res.schedule.segments()) {
    core_of[seg.task_id] = seg.core;
  }
  EXPECT_EQ(core_of[0], 0);
  EXPECT_EQ(core_of[1], 1);
  EXPECT_EQ(core_of[2], 0);
  EXPECT_EQ(core_of[3], 1);
}

TEST(Sim, UnfinishedTasksCounted) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 100.0));
  ts.add(task(1, 0.2, 1.2, 100.0));
  LazyPolicy pol;
  const auto res = simulate(ts, make_cfg(0.0, 4.0, 0.0), pol);
  EXPECT_EQ(res.unfinished, 2);
  EXPECT_EQ(res.deadline_misses, 2);
  EXPECT_TRUE(res.schedule.empty());
}

TEST(Sim, HorizonCoversDeadlinesAndSegments) {
  TaskSet ts;
  ts.add(task(0, 0.5, 3.0, 10.0));
  RunNowPolicy pol;
  const auto res = simulate(ts, make_cfg(0.0, 4.0, 0.0), pol);
  EXPECT_DOUBLE_EQ(res.horizon_lo, 0.5);
  EXPECT_GE(res.horizon_hi, 3.0);
}

TEST(Sim, SimultaneousArrivalsSingleReplan) {
  TaskSet ts;
  ts.add(task(0, 1.0, 2.0, 10.0));
  ts.add(task(1, 1.0, 2.5, 10.0));
  RunNowPolicy pol;
  const auto res = simulate(ts, make_cfg(0.0, 4.0, 0.0), pol);
  EXPECT_EQ(res.replans, 1);
  EXPECT_EQ(res.unfinished, 0);
}

TEST(Sim, ZeroWorkTasksAreNotPending) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 0.0));
  RunNowPolicy pol;
  const auto res = simulate(ts, make_cfg(0.0, 4.0, 0.0), pol);
  EXPECT_EQ(res.unfinished, 0);
  EXPECT_EQ(res.deadline_misses, 0);
  EXPECT_TRUE(res.schedule.empty());
}

TEST(Sim, EmptyTaskSet) {
  RunNowPolicy pol;
  const auto res = simulate(TaskSet{}, make_cfg(0.0, 4.0, 0.0), pol);
  EXPECT_TRUE(res.schedule.empty());
  EXPECT_EQ(res.replans, 0);
}

}  // namespace
}  // namespace sdem
