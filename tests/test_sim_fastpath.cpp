// Golden equivalence of the allocation-free online hot path against the
// frozen pre-optimization implementations in sim/sim_reference.*.
//
// The optimized simulate()/simulate_with_actuals() loops, SdemOnPolicy and
// MbkpPolicy must reproduce the originals bit for bit: same replan counts,
// same miss/unfinished counters, the same segments field by field, and
// energies within 1e-12 relative (they are in fact identical once the
// segments are). Any intentional behavior change to the hot path must come
// with an equally intentional edit here or to the reference.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "baseline/mbkp.hpp"
#include "core/online_sdem.hpp"
#include "model/power.hpp"
#include "sim/event_sim.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_reference.hpp"
#include "test_util.hpp"
#include "workload/dspstone.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;

void expect_same_result(const SimResult& fast, const SimResult& ref,
                        const SystemConfig& cfg, const std::string& what) {
  EXPECT_EQ(fast.replans, ref.replans) << what;
  EXPECT_EQ(fast.deadline_misses, ref.deadline_misses) << what;
  EXPECT_EQ(fast.unfinished, ref.unfinished) << what;
  EXPECT_EQ(fast.horizon_lo, ref.horizon_lo) << what;
  EXPECT_EQ(fast.horizon_hi, ref.horizon_hi) << what;
  const auto& fs = fast.schedule.segments();
  const auto& rs = ref.schedule.segments();
  ASSERT_EQ(fs.size(), rs.size()) << what;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    EXPECT_EQ(fs[i].task_id, rs[i].task_id) << what << " seg " << i;
    EXPECT_EQ(fs[i].core, rs[i].core) << what << " seg " << i;
    EXPECT_EQ(fs[i].start, rs[i].start) << what << " seg " << i;
    EXPECT_EQ(fs[i].end, rs[i].end) << what << " seg " << i;
    EXPECT_EQ(fs[i].speed, rs[i].speed) << what << " seg " << i;
  }
  const auto fe =
      evaluate_policy(fast, cfg, SleepDiscipline::kOptimal, "fast");
  const auto re = evaluate_policy(ref, cfg, SleepDiscipline::kOptimal, "ref");
  expect_near_rel(re.energy.system_total(), fe.energy.system_total(), 1e-12,
                  what.c_str());
  expect_near_rel(re.energy.memory_total(), fe.energy.memory_total(), 1e-12,
                  what.c_str());
}

/// Fast policy + its frozen twin, built fresh per trace.
struct PolicyPair {
  std::string label;
  std::unique_ptr<OnlinePolicy> fast;
  std::unique_ptr<OnlinePolicy> ref;
};

std::vector<PolicyPair> make_pairs() {
  std::vector<PolicyPair> out;
  out.push_back({"SDEM-ON", std::make_unique<SdemOnPolicy>(true),
                 std::make_unique<SdemOnReferencePolicy>(true)});
  out.push_back({"SDEM-ON/eager", std::make_unique<SdemOnPolicy>(false),
                 std::make_unique<SdemOnReferencePolicy>(false)});
  out.push_back({"MBKP", std::make_unique<MbkpPolicy>(),
                 std::make_unique<MbkpReferencePolicy>()});
  return out;
}

/// Deterministic early-completion fractions keyed off the task id.
std::map<int, double> make_actuals(const TaskSet& ts) {
  std::map<int, double> f;
  for (const auto& t : ts.tasks()) {
    f[t.id] = 0.35 + 0.05 * static_cast<double>((t.id * 37) % 13);
  }
  return f;
}

/// Paper-default config exercises the transition solver (xi_m > 0); the
/// other two cover the alpha and alpha0 common-release dispatch branches.
std::vector<std::pair<std::string, SystemConfig>> make_cfgs() {
  std::vector<std::pair<std::string, SystemConfig>> out;
  out.emplace_back("paper", SystemConfig::paper_default());
  auto alpha = SystemConfig::paper_default();
  alpha.memory.xi_m = 0.0;
  out.emplace_back("alpha", alpha);
  auto alpha0 = SystemConfig::paper_default_alpha0();
  alpha0.memory.xi_m = 0.0;
  out.emplace_back("alpha0", alpha0);
  return out;
}

void check_trace(const TaskSet& ts, const std::string& trace) {
  for (const auto& [cfg_name, cfg] : make_cfgs()) {
    for (auto& p : make_pairs()) {
      const std::string what = trace + "/" + cfg_name + "/" + p.label;
      expect_same_result(simulate(ts, cfg, *p.fast),
                         simulate_reference(ts, cfg, *p.ref), cfg, what);
    }
    const auto actuals = make_actuals(ts);
    for (bool replan_on_completion : {true, false}) {
      for (auto& p : make_pairs()) {
        const std::string what = trace + "/" + cfg_name + "/" + p.label +
                                 (replan_on_completion ? "/roc" : "/no-roc");
        expect_same_result(
            simulate_with_actuals(ts, cfg, *p.fast, actuals,
                                  replan_on_completion),
            simulate_with_actuals_reference(ts, cfg, *p.ref, actuals,
                                            replan_on_completion),
            cfg, what);
      }
    }
  }
}

TEST(SimFastpath, DspstoneMatchesReference) {
  for (std::uint64_t seed : {1u, 7u}) {
    DspstoneParams p;
    p.num_tasks = 96;
    check_trace(make_dspstone(p, seed), "dspstone-" + std::to_string(seed));
  }
}

TEST(SimFastpath, SyntheticMatchesReference) {
  for (std::uint64_t seed : {3u, 11u}) {
    SyntheticParams p;
    p.num_tasks = 80;
    check_trace(make_synthetic(p, seed), "synthetic-" + std::to_string(seed));
  }
}

TEST(SimFastpath, DuplicateReleaseInstantsMatchReference) {
  // Batched arrivals (several tasks per instant) stress the replan grouping
  // and the pending-order bookkeeping.
  TaskSet ts;
  int id = 0;
  for (int batch = 0; batch < 6; ++batch) {
    const double r = 0.030 * batch;
    for (int k = 0; k < 5; ++k) {
      ts.add(test::task(id++, r, r + 0.040 + 0.007 * k, 2.0 + 0.3 * k));
    }
  }
  check_trace(ts, "batched");
}

TEST(SimFastpath, MbkpResetClearsStaleCoreAssignments) {
  // Two different traces reusing the same task ids through ONE policy
  // object. simulate() resets the policy per run, so the second run must
  // be identical to a fresh policy's; without reset() the first trace's
  // core_of_ map would leak into the second (the original failure mode).
  const auto cfg = SystemConfig::paper_default();
  DspstoneParams p;
  p.num_tasks = 64;
  const auto trace_a = make_dspstone(p, 5);
  SyntheticParams sp;
  sp.num_tasks = 64;
  const auto trace_b = make_synthetic(sp, 5);

  MbkpPolicy reused;
  (void)simulate(trace_a, cfg, reused);
  const auto second = simulate(trace_b, cfg, reused);

  MbkpPolicy fresh;
  const auto expected = simulate(trace_b, cfg, fresh);
  expect_same_result(second, expected, cfg, "mbkp-reset");
}

TEST(SimFastpath, SdemOnResetIsIdempotentAcrossRuns) {
  const auto cfg = SystemConfig::paper_default();
  SyntheticParams sp;
  sp.num_tasks = 64;
  const auto trace_a = make_synthetic(sp, 2);
  const auto trace_b = make_synthetic(sp, 9);

  SdemOnPolicy reused;
  (void)simulate(trace_a, cfg, reused);
  const auto second = simulate(trace_b, cfg, reused);

  SdemOnPolicy fresh;
  const auto expected = simulate(trace_b, cfg, fresh);
  expect_same_result(second, expected, cfg, "sdem-reset");
}

}  // namespace
}  // namespace sdem
