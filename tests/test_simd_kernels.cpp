// Batched/SIMD solver kernels (src/core/block_kernel.hpp, support/simd.hpp)
// and the fused grid-sweep cells (parallel_for_grid_tiled): the bit-equality
// contracts PR 7 introduced.
//
//   * block_piece_batch must equal block_piece_scalar lane for lane,
//     bitwise, on any input mix — race/fill/clamped regimes, infeasible
//     lanes, nonpositive windows, λ ∈ {2, 2.5, 3}, s_up bounded and
//     unbounded — whether the vector path engages (n >= kBlockBatchMinLanes
//     on a SIMD build) or the scalar loop runs. This is the property that
//     lets SDEM_SIMD=ON and OFF builds produce byte-identical --stable
//     JSON.
//   * BlockContext::set_cross_check must audit the batched evaluator: a
//     full agreeable solve under audit reports zero mismatches against the
//     exact O(k) block_energy_at.
//   * Tiled grid sweeps must be pure layout: collect_grid_comparisons at
//     any tile size — and serially — returns identical bytes, per-cell
//     counter attribution included.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "bench_util.hpp"
#include "core/agreeable.hpp"
#include "core/block_context.hpp"
#include "core/block_kernel.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/thread_pool.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// One randomized SoA batch: lanes drawn to hit every regime of
/// block_piece_scalar, including infeasible (q > W * slack) and
/// nonpositive windows.
struct RandomBatch {
  std::vector<double> w, q, wpow, e_race, e_up, win;

  RandomBatch(std::size_t n, const BlockKernelConsts& c, Xoshiro256& rng) {
    for (std::size_t i = 0; i < n; ++i) {
      const double wi = rng.uniform(0.05, 4.0);
      w.push_back(wi);
      // q = w / s_up; make some lanes infeasible for their window below.
      q.push_back(std::isinf(c.s_up) ? 0.0 : wi / c.s_up);
      wpow.push_back(0.8 * std::pow(wi, c.lambda));
      e_race.push_back(rng.uniform(0.1, 5.0));
      e_up.push_back(std::isinf(c.s_up) ? kInf : rng.uniform(0.1, 5.0));
      const double r = rng.uniform();
      double wn;
      if (r < 0.08) {
        wn = r < 0.04 ? 0.0 : -rng.uniform(0.0, 1.0);  // nonpositive
      } else if (r < 0.2 && !std::isinf(c.s_up)) {
        wn = q.back() * rng.uniform(0.2, 0.999);  // infeasible: W < q
      } else if (r < 0.55) {
        wn = wi / c.s_m_raw * rng.uniform(1.001, 4.0);  // race regime
      } else if (r < 0.8) {
        wn = wi / c.s_m_raw * rng.uniform(0.3, 0.999);  // fill (or clamp)
      } else {
        wn = rng.uniform(0.01, 6.0);  // anything
      }
      win.push_back(wn);
    }
  }
};

void expect_batch_matches_scalar(const BlockKernelConsts& c, std::size_t n,
                                 std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const RandomBatch b(n, c, rng);
  std::vector<double> out(n, -1.0);
  block_piece_batch(c, b.w.data(), b.q.data(), b.wpow.data(), b.e_race.data(),
                    b.e_up.data(), b.win.data(), out.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ref = block_piece_scalar(c, b.w[i], b.q[i], b.wpow[i],
                                          b.e_race[i], b.e_up[i], b.win[i]);
    EXPECT_TRUE(same_bits(out[i], ref))
        << "lane " << i << " of " << n << " (lambda=" << c.lambda
        << ", s_up=" << c.s_up << "): batch " << out[i] << " vs scalar "
        << ref;
  }
}

TEST(SimdKernels, BatchedMatchesScalarBitwise) {
  // n = 64 engages the vector loop on SIMD builds (>= kBlockBatchMinLanes);
  // n = 3 and 9 pin the small-batch scalar path and the odd remainder lane.
  for (const double lambda : {2.0, 2.5, 3.0}) {
    for (const double s_up : {kInf, 1.9}) {
      BlockKernelConsts c;
      c.alpha = 0.14;
      c.lambda = lambda;
      c.s_m_raw = 0.849;
      c.s_up = s_up;
      std::uint64_t seed = 7;
      for (const std::size_t n : {std::size_t{3}, std::size_t{9},
                                  std::size_t{64}, std::size_t{257}}) {
        expect_batch_matches_scalar(c, n, seed += 13);
      }
    }
  }
}

TEST(SimdKernels, BatchRespectsMinLaneCutoffSemantics) {
  // Below the cutoff the batch must still be bit-equal (it takes the scalar
  // loop); at exactly kBlockBatchMinLanes the vector path may engage.
  BlockKernelConsts c;
  c.alpha = 0.2;
  c.lambda = 3.0;
  c.s_m_raw = 0.7;
  c.s_up = 2.0;
  expect_batch_matches_scalar(c, kBlockBatchMinLanes - 1, 101);
  expect_batch_matches_scalar(c, kBlockBatchMinLanes, 102);
}

TEST(SimdKernels, CrossCheckAuditsBatchedEvaluatorCleanly) {
  // A full agreeable solve under audit: every fast probe — the batched
  // evaluator included — is recomputed with the exact O(k) path. Zero
  // failures, and the audited result is bit-identical to the unaudited one.
  const SystemConfig cfg = SystemConfig::paper_default();
  for (const std::uint64_t seed : {1ull, 5ull, 9ull}) {
    const TaskSet ts = make_agreeable(16, seed, 0.060);
    const OfflineResult plain = solve_agreeable(ts, cfg);

    BlockContext::reset_cross_check_counters();
    BlockContext::set_cross_check(true);
    const OfflineResult audited = solve_agreeable(ts, cfg);
    BlockContext::set_cross_check(false);

    EXPECT_GT(BlockContext::cross_check_probes(), 0u);
    EXPECT_EQ(BlockContext::cross_check_failures(), 0u);
    EXPECT_TRUE(same_bits(audited.energy, plain.energy));
    EXPECT_TRUE(same_bits(audited.sleep_time, plain.sleep_time));
  }
}

/// Byte-level equality of two grid results, counters included.
void expect_grids_identical(
    const std::vector<std::vector<bench::SeedComparison>>& a,
    const std::vector<std::vector<bench::SeedComparison>>& b,
    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p].size(), b[p].size()) << what;
    for (std::size_t s = 0; s < a[p].size(); ++s) {
      const bench::SeedComparison& x = a[p][s];
      const bench::SeedComparison& y = b[p][s];
      EXPECT_EQ(x.seed, y.seed) << what;
      EXPECT_TRUE(same_bits(x.sdem_system, y.sdem_system)) << what;
      EXPECT_TRUE(same_bits(x.mbkps_system, y.mbkps_system)) << what;
      EXPECT_TRUE(same_bits(x.sdem_memory, y.sdem_memory)) << what;
      EXPECT_TRUE(same_bits(x.mbkps_memory, y.mbkps_memory)) << what;
      EXPECT_TRUE(same_bits(x.energy_mbkp, y.energy_mbkp)) << what;
      EXPECT_TRUE(same_bits(x.energy_mbkps, y.energy_mbkps)) << what;
      EXPECT_TRUE(same_bits(x.energy_sdem, y.energy_sdem)) << what;
      EXPECT_TRUE(same_bits(x.sleep_sdem, y.sleep_sdem)) << what;
      EXPECT_TRUE(same_bits(x.sleep_mbkps, y.sleep_mbkps)) << what;
      EXPECT_EQ(x.counters, y.counters)
          << what << ": counter attribution differs at point " << p
          << " seed " << s + 1;
    }
  }
}

TEST(SimdKernels, TiledGridIsPureLayout) {
  // tiled (several sizes) ≡ untiled ≡ serial, per-cell counters included.
  const auto make_trace = [](std::size_t point, std::uint64_t seed) {
    return make_agreeable(8 + static_cast<int>(point) * 2, seed * 31 + point,
                          0.080);
  };
  const SystemConfig cfg = SystemConfig::paper_default();
  const auto cfg_for = [&](std::size_t) -> const SystemConfig& { return cfg; };
  constexpr int kPoints = 3, kSeeds = 4;

  const auto serial =
      bench::collect_grid_comparisons(make_trace, cfg_for, kPoints, kSeeds);
  ThreadPool pool(3);
  const auto untiled = bench::collect_grid_comparisons(make_trace, cfg_for,
                                                       kPoints, kSeeds, &pool);
  expect_grids_identical(serial, untiled, "serial vs untiled");
  for (const int tile : {2, 5, 64}) {
    const auto tiled = bench::collect_grid_comparisons(
        make_trace, cfg_for, kPoints, kSeeds, &pool, tile);
    expect_grids_identical(serial, tiled, "serial vs tiled");
  }
}

}  // namespace
}  // namespace sdem
