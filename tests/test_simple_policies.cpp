// Tests for the race-to-idle / stretch / critical-speed pole policies.
#include <gtest/gtest.h>

#include "baseline/simple_policies.hpp"
#include "sched/validate.hpp"
#include "sim/event_sim.hpp"
#include "sim/metrics.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::make_cfg;
using test::task;

SystemConfig sim_cfg() {
  auto cfg = make_cfg(0.31, 4.0, 1900.0);
  cfg.num_cores = 8;
  return cfg;
}

TEST(SimplePolicies, RaceRunsAtSup) {
  TaskSet ts;
  ts.add(task(0, 0.0, 0.100, 3.0));
  RaceToIdlePolicy pol;
  const auto res = simulate(ts, sim_cfg(), pol);
  ASSERT_EQ(res.schedule.size(), 1u);
  EXPECT_NEAR(res.schedule.segments()[0].speed, 1900.0, 1e-9);
  EXPECT_NEAR(res.schedule.segments()[0].start, 0.0, 1e-12);
  EXPECT_EQ(res.deadline_misses, 0);
}

TEST(SimplePolicies, StretchFillsTheWindow) {
  TaskSet ts;
  ts.add(task(0, 0.0, 0.010, 3.0));  // filled speed 300 MHz
  StretchPolicy pol;
  auto cfg = sim_cfg();
  cfg.core.s_min = 0.0;
  const auto res = simulate(ts, cfg, pol);
  ASSERT_EQ(res.schedule.size(), 1u);
  EXPECT_NEAR(res.schedule.segments()[0].speed, 300.0, 1e-6);
  EXPECT_NEAR(res.schedule.segments()[0].end, 0.010, 1e-9);
}

TEST(SimplePolicies, CriticalSpeedRunsAtS0) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 3.0));  // loose deadline: s_0 = s_m
  CriticalSpeedPolicy pol;
  auto cfg = sim_cfg();
  cfg.core.s_min = 0.0;
  const auto res = simulate(ts, cfg, pol);
  ASSERT_EQ(res.schedule.size(), 1u);
  EXPECT_NEAR(res.schedule.segments()[0].speed,
              cfg.core.critical_speed_raw(), 1e-6);
}

TEST(SimplePolicies, AllFeasibleOnGeneratedLoads) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SyntheticParams p;
    p.num_tasks = 50;
    p.max_interarrival = 0.300;
    const TaskSet ts = make_synthetic(p, seed);
    for (int which = 0; which < 3; ++which) {
      RaceToIdlePolicy race;
      StretchPolicy stretch;
      CriticalSpeedPolicy crit;
      OnlinePolicy* pol =
          which == 0 ? static_cast<OnlinePolicy*>(&race)
                     : which == 1 ? static_cast<OnlinePolicy*>(&stretch)
                                  : static_cast<OnlinePolicy*>(&crit);
      const auto res = simulate(ts, sim_cfg(), *pol);
      EXPECT_EQ(res.unfinished, 0) << pol->name() << " seed " << seed;
      EXPECT_EQ(res.deadline_misses, 0) << pol->name() << " seed " << seed;
      const auto v = validate_schedule(res.schedule, ts, sim_cfg());
      EXPECT_TRUE(v.ok) << pol->name() << ": " << v.error;
    }
  }
}

TEST(SimplePolicies, SdemOnBeatsBothPoles) {
  // The paper's thesis: neither pole is right; the balance wins. Average
  // over seeds at the default operating point.
  auto cfg = sim_cfg();
  double e_race = 0, e_stretch = 0, e_sdem = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SyntheticParams p;
    p.num_tasks = 80;
    p.max_interarrival = 0.400;
    const TaskSet ts = make_synthetic(p, seed * 11);
    RaceToIdlePolicy race;
    StretchPolicy stretch;
    const auto race_sim = simulate(ts, cfg, race);
    const auto stretch_sim = simulate(ts, cfg, stretch);
    e_race += evaluate_policy(race_sim, cfg, SleepDiscipline::kOptimal, "r")
                  .energy.system_total();
    e_stretch +=
        evaluate_policy(stretch_sim, cfg, SleepDiscipline::kOptimal, "s")
            .energy.system_total();
    const auto cmp = run_comparison(ts, cfg);
    e_sdem += cmp.sdem.energy.system_total();
  }
  EXPECT_LT(e_sdem, e_race);
  EXPECT_LT(e_sdem, e_stretch);
}

TEST(SimplePolicies, PolesOrderFlipsWithMemoryPower) {
  // Cheap memory favors stretch; expensive memory favors race. The
  // crossover is the paper's motivation.
  TaskSet ts;
  ts.add(task(0, 0.0, 0.050, 20.0));
  auto cheap = sim_cfg();
  cheap.core.s_min = 0.0;
  cheap.memory.alpha_m = 0.05;
  auto dear = cheap;
  dear.memory.alpha_m = 50.0;
  RaceToIdlePolicy race;
  StretchPolicy stretch;
  auto energy = [&](OnlinePolicy& p, const SystemConfig& c) {
    const auto sim = simulate(ts, c, p);
    return evaluate_policy(sim, c, SleepDiscipline::kOptimal, "x")
        .energy.system_total();
  };
  EXPECT_LT(energy(stretch, cheap), energy(race, cheap));
  EXPECT_LT(energy(race, dear), energy(stretch, dear));
}

}  // namespace
}  // namespace sdem
