// Tests for the multi-state memory sleep ladder (model/sleep_ladder.hpp),
// the ladder-aware energy accounting path (sched/energy.hpp), and the
// predictive idle governor (sim/governor.hpp).
//
// The load-bearing contract: the depth-1 ladder built by
// SleepLadder::single(alpha_m, xi_m) must reproduce the legacy single-state
// accounting *bit for bit* — energies compared with EXPECT_EQ, not
// EXPECT_NEAR — because every committed --stable bench JSON was produced by
// the legacy path and the frozen-oracle policy pins refactors to it.
#include <gtest/gtest.h>

#include "model/sleep_ladder.hpp"
#include "sched/energy.hpp"
#include "sim/event_sim.hpp"
#include "sim/governor.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "testing/generators.hpp"
#include "testing/invariants.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::make_cfg;

Schedule gap_schedule() {
  // One core, three bursts: a 10 ms gap and a 1 s gap.
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1000.0});
  s.add(Segment{1, 0, 1.010, 2.0, 1000.0});
  s.add(Segment{2, 0, 3.0, 3.5, 1000.0});
  return s;
}

// -- ladder construction and validation ------------------------------------

TEST(SleepLadder, SingleStoresXiVerbatim) {
  const double xi_m = 0.0123456789012345678;  // not exactly representable
  const auto ladder = SleepLadder::single(4.0, xi_m);
  ASSERT_EQ(ladder.depth(), 1);
  EXPECT_EQ(ladder.state(0).xi, xi_m);  // bitwise: stored, not re-derived
  EXPECT_EQ(ladder.state(0).power, 0.0);
  EXPECT_EQ(ladder.state(0).latency, 0.0);
  EXPECT_EQ(ladder.state(0).pair_energy, 4.0 * xi_m);
  EXPECT_TRUE(ladder.validate(4.0).empty());
}

TEST(SleepLadder, GeometricIsValidAndDeepestMatchesPaperState) {
  for (int depth : {1, 2, 3, 4, 6}) {
    const auto ladder = SleepLadder::geometric(4.0, 0.04, depth);
    ASSERT_EQ(ladder.depth(), depth);
    EXPECT_TRUE(ladder.validate(4.0).empty()) << ladder.validate(4.0);
    // Deepest rung is exactly the paper's single state.
    EXPECT_EQ(ladder.state(depth - 1).power, 0.0);
    EXPECT_EQ(ladder.state(depth - 1).xi, 0.04);
  }
}

TEST(SleepLadder, XiMonotoneIncreasingInDepth) {
  const auto ladder = SleepLadder::geometric(4.0, 0.04, 5);
  for (int k = 1; k < ladder.depth(); ++k) {
    EXPECT_LT(ladder.state(k - 1).xi, ladder.state(k).xi);
    EXPECT_GT(ladder.state(k - 1).power, ladder.state(k).power);
    EXPECT_LE(ladder.state(k - 1).latency, ladder.state(k).latency);
  }
}

TEST(SleepLadder, ValidateRejectsMalformedLadders) {
  SleepLadder over;
  over.add_state_exact({"x", 5.0, 0.01, 0.0, 0.005});
  EXPECT_FALSE(over.validate(4.0).empty());  // power >= alpha_m

  SleepLadder nonmono;
  nonmono.add_state_exact({"a", 2.0, 0.02, 0.0, 0.01});
  nonmono.add_state_exact({"b", 3.0, 0.06, 0.0, 0.06});
  EXPECT_FALSE(nonmono.validate(4.0).empty());  // power increases

  SleepLadder dominated;
  dominated.add_state_exact({"a", 2.0, 0.02, 0.0, 0.01});
  dominated.add_state_exact({"b", 1.0, 0.015, 0.0, 0.005});
  EXPECT_FALSE(dominated.validate(4.0).empty());  // xi decreases
}

TEST(SleepLadder, OracleAtDepthOneMatchesLegacyRule) {
  const double xi_m = 0.04;
  const auto ladder = SleepLadder::single(4.0, xi_m);
  EXPECT_EQ(ladder.oracle_state(xi_m * 0.999), -1);  // idle pays
  EXPECT_EQ(ladder.oracle_state(xi_m), 0);           // boundary sleeps
  EXPECT_EQ(ladder.oracle_state(xi_m * 10.0), 0);
}

TEST(SleepLadder, DeepestFitRespectsBreakEvenAndLatency) {
  const auto ladder = SleepLadder::geometric(4.0, 0.04, 4, /*latency=*/0.25);
  // xi[k] = 0.04 * (k+1)^2/16: {0.0025, 0.01, 0.0225, 0.04}.
  EXPECT_EQ(ladder.deepest_fit(0.001), -1);
  EXPECT_EQ(ladder.deepest_fit(0.005), 0);
  EXPECT_EQ(ladder.deepest_fit(0.015), 1);
  EXPECT_EQ(ladder.deepest_fit(1.0), 3);
  // A gap above xi but below the enter+exit latency must not fit.
  SleepLadder slow;
  slow.add_state_exact({"s", 0.0, 0.04, /*latency=*/0.5, /*xi=*/0.01});
  EXPECT_EQ(slow.deepest_fit(0.1), -1);
  EXPECT_EQ(slow.deepest_fit(0.6), 0);
}

// -- depth-1 differential vs the frozen single-state oracle ----------------

TEST(SleepLadder, Depth1AccountingBitIdenticalToLegacy) {
  for (double xi_m : {0.0, 0.007, 0.04, 0.2, 1.5}) {
    auto legacy_cfg = make_cfg(0.31, 4.0);
    legacy_cfg.memory.xi_m = xi_m;
    auto ladder_cfg = legacy_cfg;
    ladder_cfg.memory.ladder = SleepLadder::single(4.0, xi_m);

    for (auto disc : {SleepDiscipline::kNever, SleepDiscipline::kAlways,
                      SleepDiscipline::kOptimal}) {
      EnergyOptions opts;
      opts.memory_gaps = disc;
      opts.horizon_lo = -0.5;
      opts.horizon_hi = 4.25;
      const auto a = compute_energy(gap_schedule(), legacy_cfg, opts);
      const auto b = compute_energy(gap_schedule(), ladder_cfg, opts);
      // Segment-exact: every rollup the legacy path produces must be
      // reproduced bitwise by the depth-1 ladder path.
      EXPECT_EQ(a.memory_active, b.memory_active) << "xi_m=" << xi_m;
      EXPECT_EQ(a.memory_idle, b.memory_idle) << "xi_m=" << xi_m;
      EXPECT_EQ(a.memory_transition, b.memory_transition) << "xi_m=" << xi_m;
      EXPECT_EQ(a.memory_sleep_time, b.memory_sleep_time) << "xi_m=" << xi_m;
      EXPECT_EQ(a.memory_sleep_cycles, b.memory_sleep_cycles);
      EXPECT_EQ(a.memory_sleep_min, b.memory_sleep_min);
      EXPECT_EQ(a.memory_sleep_max, b.memory_sleep_max);
      EXPECT_EQ(a.memory_total(), b.memory_total()) << "xi_m=" << xi_m;
      EXPECT_EQ(a.system_total(), b.system_total()) << "xi_m=" << xi_m;
    }
  }
}

TEST(SleepLadder, Depth1BitIdenticalOnSimulatedBurstyTraces) {
  // Same differential over real simulator output (leading/trailing horizon
  // gaps, multi-core overlap, replanned segments) across many seeds.
  for (std::uint64_t seed : {1u, 7u, 23u, 99u}) {
    BurstyParams p;
    p.num_tasks = 40;
    p.intra_spacing = 0.015;
    const auto trace = make_bursty(p, seed);
    auto legacy_cfg = make_cfg(0.31, 4.0);
    legacy_cfg.memory.xi_m = 0.04;
    legacy_cfg.num_cores = 8;
    auto ladder_cfg = legacy_cfg;
    ladder_cfg.memory.ladder = SleepLadder::single(4.0, 0.04);

    MbkpPolicy pol;
    const auto sim = simulate(trace, legacy_cfg, pol);
    const auto a =
        evaluate_policy(sim, legacy_cfg, SleepDiscipline::kOptimal, "a");
    const auto b =
        evaluate_policy(sim, ladder_cfg, SleepDiscipline::kOptimal, "b");
    EXPECT_EQ(a.energy.memory_total(), b.energy.memory_total())
        << "seed " << seed;
    EXPECT_EQ(a.energy.memory_idle, b.energy.memory_idle);
    EXPECT_EQ(a.energy.memory_transition, b.energy.memory_transition);
    EXPECT_EQ(a.energy.memory_sleep_cycles, b.energy.memory_sleep_cycles);
  }
}

// -- ladder accounting -----------------------------------------------------

TEST(SleepLadder, PerStateResidencyAndTransitionRollups) {
  auto cfg = make_cfg(0.0, 4.0);
  cfg.memory.xi_m = 0.04;
  cfg.memory.ladder = SleepLadder::geometric(4.0, 0.04, 4);
  EnergyOptions opts;
  opts.memory_gaps = SleepDiscipline::kOptimal;
  const auto e = compute_energy(gap_schedule(), cfg, opts);
  ASSERT_EQ(e.memory_states.size(), 4u);
  double residency = 0.0, transition = 0.0, cycles = 0.0;
  for (int k = 0; k < 4; ++k) {
    const auto& ps = e.memory_states[static_cast<std::size_t>(k)];
    EXPECT_EQ(ps.residency_energy,
              cfg.memory.ladder.state(k).power * ps.sleep_time);
    EXPECT_EQ(ps.transition_energy,
              cfg.memory.ladder.state(k).pair_energy * (ps.cycles + ps.aborts));
    residency += ps.residency_energy;
    transition += ps.transition_energy;
    cycles += ps.cycles;
  }
  EXPECT_EQ(e.memory_sleep_residency, residency);
  EXPECT_EQ(e.memory_transition, transition);
  EXPECT_EQ(e.memory_sleep_cycles, cycles);
  // Both gaps beat the deepest break-even (0.04): the 10 ms gap picks an
  // intermediate state, the 1 s gap the deepest one.
  EXPECT_GT(e.memory_sleep_residency, 0.0);
  EXPECT_EQ(e.memory_states[3].cycles, 1.0);
}

TEST(SleepLadder, OracleBeatsEveryFixedDisciplineOnMixedGaps) {
  auto cfg = make_cfg(0.0, 4.0);
  cfg.memory.xi_m = 0.04;
  cfg.memory.ladder = SleepLadder::geometric(4.0, 0.04, 4);
  const auto sched = gap_schedule();
  const auto eval = [&](SleepDiscipline d) {
    EnergyOptions opts;
    opts.memory_gaps = d;
    return compute_energy(sched, cfg, opts).memory_total();
  };
  const double oracle = eval(SleepDiscipline::kOptimal);
  EXPECT_LE(oracle, eval(SleepDiscipline::kNever));
  EXPECT_LE(oracle, eval(SleepDiscipline::kAlways));
}

TEST(SleepLadder, AbortChargesIdleAndPairWithoutResidency) {
  // One interior gap of 5 ms against a single state whose latency (20 ms)
  // cannot fit: kAlways commits anyway, so the gap must cost idle energy
  // plus the pair energy, count as an abort, and accumulate no residency.
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 1000.0});
  s.add(Segment{1, 0, 1.005, 2.0, 1000.0});
  auto cfg = make_cfg(0.0, 4.0);
  cfg.memory.xi_m = 0.001;
  SleepLadder ladder;
  ladder.add_state_exact({"slow", 0.0, 0.004, /*latency=*/0.020, /*xi=*/0.001});
  cfg.memory.ladder = ladder;
  EnergyOptions opts;
  opts.memory_gaps = SleepDiscipline::kAlways;
  const auto e = compute_energy(s, cfg, opts);
  ASSERT_EQ(e.memory_states.size(), 1u);
  EXPECT_EQ(e.governor_aborts, 1.0);
  EXPECT_EQ(e.memory_states[0].aborts, 1.0);
  EXPECT_EQ(e.memory_states[0].sleep_time, 0.0);
  EXPECT_EQ(e.memory_states[0].residency_energy, 0.0);
  EXPECT_NEAR(e.memory_idle, 4.0 * 0.005, 1e-12);
  EXPECT_EQ(e.memory_states[0].transition_energy, 0.004);
}

// -- governor --------------------------------------------------------------

TEST(Governor, SelectsByPredictionAtBoundaryTightGaps) {
  const auto ladder = SleepLadder::geometric(4.0, 0.04, 4);
  // xi = {0.0025, 0.01, 0.0225, 0.04}.
  IdleGovernor gov;
  // Train on gaps of exactly 0.0225: prediction converges there, and the
  // deepest fitting state is index 2 — not 3, whose 0.04 does not fit.
  int k = gov.choose_state(ladder);
  EXPECT_EQ(k, ladder.depth() - 1);  // cold start commits deep
  for (int i = 0; i < 32; ++i) {
    gov.observe(0.0225, false);
    k = gov.choose_state(ladder);
  }
  EXPECT_EQ(gov.predict(), 0.0225);
  EXPECT_EQ(k, 2);
  // Just below the boundary the selection must drop to state 1.
  IdleGovernor tight;
  tight.choose_state(ladder);
  for (int i = 0; i < 32; ++i) tight.observe(0.0224, false);
  EXPECT_EQ(ladder.deepest_fit(0.0224), 1);  // 0.0224 < xi[2] = 0.0225
  EXPECT_EQ(tight.choose_state(ladder), 1);
}

TEST(Governor, MispredictAbortClampsThePredictor) {
  const auto ladder = SleepLadder::geometric(4.0, 0.04, 2, /*latency=*/0.3);
  IdleGovernor gov;
  gov.choose_state(ladder);
  for (int i = 0; i < 16; ++i) gov.observe(1.0, false);
  EXPECT_GT(gov.predict(), 0.5);
  // An aborted early wakeup snaps the estimate down immediately.
  gov.observe(0.002, true);
  EXPECT_EQ(gov.mispredict_clamps(), 1.0);
  EXPECT_LE(gov.predict(), 0.002 + 1e-12);
}

TEST(Governor, EarlyWakeupAccountingChargesAbortedPair) {
  // Governor trained long, then hit with a sub-latency gap: the ladder
  // accounting must record a governor abort and charge idle + pair.
  auto cfg = make_cfg(0.0, 4.0);
  cfg.memory.xi_m = 0.04;
  SleepLadder ladder;
  ladder.add_state_exact({"deep", 0.0, 0.16, /*latency=*/0.050, /*xi=*/0.04});
  cfg.memory.ladder = ladder;

  Schedule s;
  double t = 0.0, last_end = 0.0;
  for (int i = 0; i < 6; ++i) {  // five 1 s gaps train the governor long
    s.add(Segment{i, 0, t, t + 0.1, 1000.0});
    last_end = t + 0.1;
    t += 1.1;
  }
  // Final gap of 4 ms < the 50 ms latency: the trained-long governor
  // commits and must be charged an abort.
  s.add(Segment{6, 0, last_end + 0.004, last_end + 0.1, 1000.0});
  IdleGovernor gov;
  EnergyOptions opts;
  opts.memory_gaps = SleepDiscipline::kGovernor;
  opts.governor = &gov;
  const auto e = compute_energy(s, cfg, opts);
  EXPECT_EQ(e.governor_aborts, 1.0);
  EXPECT_EQ(e.memory_states[0].aborts, 1.0);
  EXPECT_EQ(e.memory_states[0].cycles, 5.0);
  EXPECT_NEAR(e.memory_idle, 4.0 * 0.004, 1e-12);
}

TEST(Governor, NullGovernorFallsBackToOracle) {
  auto cfg = make_cfg(0.0, 4.0);
  cfg.memory.xi_m = 0.04;
  cfg.memory.ladder = SleepLadder::geometric(4.0, 0.04, 3);
  EnergyOptions gov_opts;
  gov_opts.memory_gaps = SleepDiscipline::kGovernor;  // governor == nullptr
  EnergyOptions oracle_opts;
  oracle_opts.memory_gaps = SleepDiscipline::kOptimal;
  const auto a = compute_energy(gap_schedule(), cfg, gov_opts);
  const auto b = compute_energy(gap_schedule(), cfg, oracle_opts);
  EXPECT_EQ(a.memory_total(), b.memory_total());
}

TEST(Governor, DecisionsAreAPureFunctionOfTheObservationSequence) {
  const auto ladder = SleepLadder::geometric(4.0, 0.04, 4);
  Xoshiro256 rng(42);
  std::vector<double> gaps;
  for (int i = 0; i < 200; ++i) {
    gaps.push_back(rng.uniform() < 0.3 ? rng.uniform(0.05, 0.8)
                                       : rng.uniform(0.0005, 0.02));
  }
  const auto run = [&] {
    IdleGovernor gov;
    std::vector<int> decisions;
    for (double g : gaps) {
      const int k = gov.choose_state(ladder);
      decisions.push_back(k);
      const bool aborted = k >= 0 && g < ladder.state(k).latency;
      gov.observe(g, aborted);
    }
    return decisions;
  };
  EXPECT_EQ(run(), run());  // replay determinism, including cold start
}

// -- fuzz-class wiring -----------------------------------------------------

TEST(SleepLadder, FuzzClassGeneratesValidCasesAndChecksClean) {
  for (std::uint64_t seed : {3u, 17u, 301u}) {
    const auto c =
        testing::generate_case(testing::ModelClass::kSleepLadder, seed);
    ASSERT_TRUE(c.has_sleep_ladder());
    EXPECT_TRUE(
        c.cfg.memory.ladder.validate(c.cfg.memory.alpha_m).empty());
    EXPECT_GT(c.cfg.memory.xi_m, 0.0);
    const auto violations = testing::check_case(c);
    EXPECT_TRUE(violations.empty()) << testing::summarize(violations);
  }
}

}  // namespace
}  // namespace sdem
