// SpscRing + Backoff (support/spsc_ring.hpp): batched vs element-wise
// equivalence, wraparound, capacity-1 degenerate ring, partial pushes when
// full, move-only payloads, and a concurrent producer/consumer run (the
// TSan leg of CI runs these — the ring's acquire/release pairs are the
// entire synchronization story of the ingest pipeline).
#include "support/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

namespace sdem {
namespace {

TEST(SpscRing, BatchedMatchesElementwise) {
  // The same 100 items through push_n batches and through try_push must
  // pop in the same order (FIFO either way).
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);

  SpscRing<int> batched(128);
  std::vector<int> scratch = items;
  std::size_t off = 0;
  for (const std::size_t batch : {7u, 1u, 31u, 19u, 42u}) {
    off += batched.push_n(scratch.data() + off,
                          std::min(batch, scratch.size() - off));
  }
  while (off < scratch.size()) {
    off += batched.push_n(scratch.data() + off, scratch.size() - off);
  }

  SpscRing<int> elementwise(128);
  for (int v : items) ASSERT_TRUE(elementwise.try_push(std::move(v)));

  std::vector<int> got_batched;
  int buf[17];
  for (;;) {
    const std::size_t k = batched.pop_n(buf, 17);
    if (k == 0) break;
    got_batched.insert(got_batched.end(), buf, buf + k);
  }
  std::vector<int> got_elementwise;
  int v;
  while (elementwise.try_pop(v)) got_elementwise.push_back(v);

  EXPECT_EQ(got_batched, items);
  EXPECT_EQ(got_elementwise, items);
}

TEST(SpscRing, WraparoundKeepsFifoOrder) {
  // Capacity 4, 1000 items: indices wrap the slot array 250 times.
  SpscRing<int> ring(4);
  int next_push = 0;
  int next_pop = 0;
  while (next_pop < 1000) {
    while (next_push < 1000 && ring.try_push(int(next_push))) ++next_push;
    int out[3];
    const std::size_t k = ring.pop_n(out, 3);
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(out[i], next_pop) << "FIFO order broken after wraparound";
      ++next_pop;
    }
    ASSERT_TRUE(k > 0 || next_push > next_pop || next_pop == 1000);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, CapacityOne) {
  SpscRing<std::string> ring(1);
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_TRUE(ring.try_push("a"));
  EXPECT_FALSE(ring.try_push("b"));  // full at one element
  std::string out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "a");
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push("c"));
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "c");
}

TEST(SpscRing, PartialPushWhenNearlyFull) {
  SpscRing<int> ring(8);
  std::vector<int> items(5);
  std::iota(items.begin(), items.end(), 0);
  EXPECT_EQ(ring.push_n(items.data(), items.size()), 5u);
  std::vector<int> more(5);
  std::iota(more.begin(), more.end(), 5);
  // Only 3 slots left: push_n takes what fits and reports it.
  EXPECT_EQ(ring.push_n(more.data(), more.size()), 3u);
  EXPECT_EQ(ring.push_n(more.data() + 3, 2), 0u);
  EXPECT_EQ(ring.size(), 8u);
  int out[8];
  EXPECT_EQ(ring.pop_n(out, 8), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.try_push(std::make_unique<int>(i)));
  }
  std::unique_ptr<int> out[3];
  ASSERT_EQ(ring.pop_n(out, 3), 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(out[i], nullptr);
    EXPECT_EQ(*out[i], i);
  }
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  // One producer, one consumer, a deliberately tight ring so both sides
  // exercise the full/empty paths and the Backoff ladder. Values must
  // arrive exactly once, in order.
  constexpr int kItems = 200000;
  SpscRing<int> ring(64);
  std::thread producer([&] {
    Backoff backoff;
    int next = 0;
    while (next < kItems) {
      int batch[32];
      const int n = std::min(32, kItems - next);
      for (int i = 0; i < n; ++i) batch[i] = next + i;
      std::size_t pushed = 0;
      while (pushed < static_cast<std::size_t>(n)) {
        const std::size_t k =
            ring.push_n(batch + pushed, static_cast<std::size_t>(n) - pushed);
        if (k == 0) {
          backoff.pause();
        } else {
          backoff.reset();
          pushed += k;
        }
      }
      next += n;
    }
  });
  std::vector<int> got;
  got.reserve(kItems);
  Backoff backoff;
  while (static_cast<int>(got.size()) < kItems) {
    int buf[48];
    const std::size_t k = ring.pop_n(buf, 48);
    if (k == 0) {
      backoff.pause();
      continue;
    }
    backoff.reset();
    got.insert(got.end(), buf, buf + k);
  }
  producer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i) << "lost or reordered";
  }
  EXPECT_TRUE(ring.empty());
}

TEST(Backoff, EscalatesToSleepingAndResets) {
  Backoff b;
  EXPECT_FALSE(b.sleeping());
  // 6 spin rounds + 8 yield rounds, then the sleep tier.
  for (int i = 0; i < 14; ++i) {
    EXPECT_FALSE(b.sleeping()) << "escalated too early at round " << i;
    b.pause();
  }
  EXPECT_TRUE(b.sleeping());
  b.pause();  // one sleep round must terminate (bounded, <= 1 ms)
  EXPECT_TRUE(b.sleeping());
  b.reset();
  EXPECT_FALSE(b.sleeping());
}

}  // namespace
}  // namespace sdem
