// Tests for single-core speed scaling with sleep (critical-speed method).
#include <gtest/gtest.h>

#include <cmath>

#include "single/sss.hpp"
#include "sched/validate.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::make_cfg;

CorePower a57_core(double xi = 0.0) {
  CorePower c;
  c.alpha = 0.31;
  c.beta = 2.53e-10;
  c.lambda = 3.0;
  c.s_up = 1900.0;
  c.xi = xi;
  return c;
}

std::vector<YdsJob> to_jobs(const TaskSet& ts) {
  std::vector<YdsJob> jobs;
  for (const auto& t : ts.tasks()) {
    jobs.push_back({t.id, t.release, t.deadline, t.work});
  }
  return jobs;
}

TEST(Sss, SingleLooseJobRunsAtCriticalSpeed) {
  const auto core = a57_core();
  const auto res = solve_single_core_sleep({{0, 0.0, 10.0, 5.0}}, core);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.schedule.size(), 1u);
  EXPECT_NEAR(res.schedule.segments()[0].speed, core.critical_speed_raw(),
              1e-9);
  // Energy matches the closed form (beta s_m^3 + alpha) w / s_m.
  EXPECT_NEAR(res.energy, core.exec_energy(5.0, core.critical_speed_raw()),
              1e-12);
}

TEST(Sss, TightJobKeepsYdsSpeed) {
  const auto core = a57_core();
  // Density 1500 MHz > s_m: YDS speed stands.
  const auto res = solve_single_core_sleep({{0, 0.0, 0.002, 3.0}}, core);
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.schedule.segments()[0].speed, 1500.0, 1e-9);
}

TEST(Sss, FeasibleOnRandomSets) {
  const auto core = a57_core(0.005);
  auto cfg = make_cfg(core.alpha, 0.0, core.s_up);
  cfg.core.xi = core.xi;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    SyntheticParams p;
    p.num_tasks = 10;
    p.max_interarrival = 0.050;
    const TaskSet ts = make_synthetic(p, seed);
    const auto res = solve_single_core_sleep(to_jobs(ts), core);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    ValidateOptions opts;
    opts.require_non_migrating = true;
    const auto v = validate_schedule(res.schedule, ts, cfg, opts);
    EXPECT_TRUE(v.ok) << v.error << " seed " << seed;
  }
}

TEST(Sss, NeverWorseThanPlainYdsOrRace) {
  const auto core = a57_core(0.002);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SyntheticParams p;
    p.num_tasks = 8;
    p.max_interarrival = 0.060;
    const TaskSet ts = make_synthetic(p, seed * 3);
    const auto jobs = to_jobs(ts);
    const auto res = solve_single_core_sleep(jobs, core);
    ASSERT_TRUE(res.feasible);

    // Plain YDS (stretchy speeds) under the same accounting.
    const double e_yds = single_core_energy(yds_schedule(jobs, 0), core);
    EXPECT_LE(res.energy, e_yds + 1e-9) << "seed " << seed;

    // Race-to-idle: everything at s_up as soon as possible (EDF order).
    Schedule race;
    auto sorted = jobs;
    std::sort(sorted.begin(), sorted.end(),
              [](const YdsJob& x, const YdsJob& y) {
                return x.release < y.release;
              });
    double cur = 0.0;
    for (const auto& j : sorted) {
      const double start = std::max(cur, j.release);
      race.add(Segment{j.id, 0, start, start + j.work / core.s_up,
                       core.s_up});
      cur = start + j.work / core.s_up;
    }
    EXPECT_LE(res.energy, single_core_energy(race, core) + 1e-9)
        << "seed " << seed;
  }
}

TEST(Sss, SleepsOnlyPastBreakEven) {
  auto core = a57_core(1.0);  // huge break-even: never sleep
  const auto res = solve_single_core_sleep(
      {{0, 0.0, 0.010, 4.0}, {1, 0.200, 0.210, 4.0}}, core);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.sleeps, 0);
  core.xi = 0.010;  // now the ~190 ms gap sleeps
  const auto res2 = solve_single_core_sleep(
      {{0, 0.0, 0.010, 4.0}, {1, 0.200, 0.210, 4.0}}, core);
  EXPECT_EQ(res2.sleeps, 1);
  EXPECT_GT(res2.sleep_time, 0.150);
  EXPECT_LT(res2.energy, res.energy);
}

TEST(Sss, InfeasibleAboveSup) {
  const auto core = a57_core();
  EXPECT_FALSE(
      solve_single_core_sleep({{0, 0.0, 0.001, 4.0}}, core).feasible);
}

TEST(Sss, MatchesBruteForceOnSingleBatch) {
  // One common-release batch: the optimum runs each task at
  // max(s_m, staircase speed); cross-check against a dense scan over a
  // uniform batch speed (valid because the staircase is flat here).
  const auto core = a57_core();
  const std::vector<YdsJob> jobs{
      {0, 0.0, 0.100, 3.0}, {1, 0.0, 0.100, 2.0}, {2, 0.0, 0.100, 4.0}};
  const auto res = solve_single_core_sleep(jobs, core);
  ASSERT_TRUE(res.feasible);
  double best = 1e18;
  for (int i = 1; i <= 200000; ++i) {
    const double s = 1900.0 * i / 200000.0;
    if (9.0 / s > 0.100) continue;  // misses the common deadline
    best = std::min(best, core.exec_energy(9.0, s));
  }
  EXPECT_NEAR(res.energy, best, 1e-6 * best);
}

}  // namespace
}  // namespace sdem
