// Tests for the streaming statistics accumulator.
#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace sdem {
namespace {

TEST(Stats, Empty) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(Stats, KnownSample) {
  Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, SingleValue) {
  Stats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, NumericallyStableOnOffset) {
  // Classic catastrophic-cancellation check: huge offset, small variance.
  Stats s;
  for (double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0}) s.add(x);
  EXPECT_NEAR(s.mean(), 1e9 + 10.0, 1e-3);
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

TEST(Stats, SemShrinksWithN) {
  Stats a, b;
  for (int i = 0; i < 10; ++i) a.add(i % 2);
  for (int i = 0; i < 1000; ++i) b.add(i % 2);
  EXPECT_GT(a.sem(), b.sem());
}

}  // namespace
}  // namespace sdem
