// Tests for the SVG Gantt exporter.
#include <gtest/gtest.h>

#include "sched/svg.hpp"

namespace sdem {
namespace {

Schedule sample() {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 0.5, 800.0});
  s.add(Segment{1, 1, 0.2, 0.8, 1200.0});
  return s;
}

int count(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Svg, WellFormedDocument) {
  const auto svg = render_svg(sample());
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(count(svg, "<svg"), 1);
}

TEST(Svg, LanesAndSegmentsPresent) {
  const auto svg = render_svg(sample());
  EXPECT_NE(svg.find("core 0"), std::string::npos);
  EXPECT_NE(svg.find("core 1"), std::string::npos);
  EXPECT_NE(svg.find("MEM"), std::string::npos);
  // 2 lane backgrounds + 2 segments + 1 memory background + 1 memory busy.
  EXPECT_GE(count(svg, "<rect"), 6);
  // Tooltips carry the task metadata.
  EXPECT_NE(svg.find("task 0:"), std::string::npos);
  EXPECT_NE(svg.find("800 MHz"), std::string::npos);
}

TEST(Svg, DeterministicColors) {
  const auto a = render_svg(sample());
  const auto b = render_svg(sample());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("hsl("), std::string::npos);
}

TEST(Svg, TitleAndOptions) {
  SvgOptions opts;
  opts.title = "my schedule";
  opts.show_memory = false;
  const auto svg = render_svg(sample(), opts);
  EXPECT_NE(svg.find("my schedule"), std::string::npos);
  EXPECT_EQ(svg.find("MEM"), std::string::npos);
}

TEST(Svg, EmptyScheduleStillRenders) {
  const auto svg = render_svg(Schedule{});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace sdem
