// Tests for the ASCII table renderer used by the bench harness.
#include <gtest/gtest.h>

#include "support/table.hpp"

namespace sdem {
namespace {

TEST(Table, AlignedTextOutput) {
  Table t({"name", "value"});
  t.add_row({"x", "1.5"});
  t.add_row({"longer-name", "2"});
  const std::string s = t.to_text();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace sdem
