// Tests for the task model and task-set classification.
#include <gtest/gtest.h>

#include <cmath>

#include "model/task.hpp"
#include "test_util.hpp"

namespace sdem {
namespace {

using test::task;

TEST(Task, FilledSpeed) {
  EXPECT_DOUBLE_EQ(task(0, 0.0, 2.0, 10.0).filled_speed(), 5.0);
  EXPECT_DOUBLE_EQ(task(0, 1.0, 3.0, 1.0).filled_speed(), 0.5);
  EXPECT_TRUE(std::isinf(task(0, 1.0, 1.0, 1.0).filled_speed()));
}

TEST(TaskSet, ClassifyCommonReleaseDeadline) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 1.0));
  ts.add(task(1, 0.0, 1.0, 2.0));
  EXPECT_EQ(ts.classify(), TaskModel::kCommonReleaseDeadline);
  EXPECT_TRUE(ts.is_common_release());
  EXPECT_TRUE(ts.is_agreeable());
}

TEST(TaskSet, ClassifyCommonRelease) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 1.0));
  ts.add(task(1, 0.0, 2.0, 2.0));
  EXPECT_EQ(ts.classify(), TaskModel::kCommonRelease);
}

TEST(TaskSet, ClassifyAgreeable) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 1.0));
  ts.add(task(1, 0.5, 1.5, 2.0));
  EXPECT_EQ(ts.classify(), TaskModel::kAgreeable);
  EXPECT_FALSE(ts.is_common_release());
}

TEST(TaskSet, ClassifyGeneral) {
  TaskSet ts;
  ts.add(task(0, 0.0, 2.0, 1.0));
  ts.add(task(1, 0.5, 1.0, 2.0));  // nested
  EXPECT_EQ(ts.classify(), TaskModel::kGeneral);
  EXPECT_FALSE(ts.is_agreeable());
}

TEST(TaskSet, EqualReleasesAnyDeadlineOrderIsAgreeable) {
  TaskSet ts;
  ts.add(task(0, 0.0, 2.0, 1.0));
  ts.add(task(1, 0.0, 1.0, 1.0));  // same release, earlier deadline: fine
  EXPECT_TRUE(ts.is_agreeable());
}

TEST(TaskSet, EmptySetProperties) {
  TaskSet ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_TRUE(ts.is_common_release());
  EXPECT_TRUE(ts.is_agreeable());
  EXPECT_EQ(ts.total_work(), 0.0);
  EXPECT_TRUE(ts.validate().empty());
}

TEST(TaskSet, SortedByDeadlineStable) {
  TaskSet ts;
  ts.add(task(2, 0.0, 3.0, 1.0));
  ts.add(task(0, 0.0, 1.0, 1.0));
  ts.add(task(1, 0.0, 2.0, 1.0));
  const auto sorted = ts.sorted_by_deadline();
  EXPECT_EQ(sorted[0].id, 0);
  EXPECT_EQ(sorted[1].id, 1);
  EXPECT_EQ(sorted[2].id, 2);
}

TEST(TaskSet, SortedByRelease) {
  TaskSet ts;
  ts.add(task(1, 2.0, 3.0, 1.0));
  ts.add(task(0, 1.0, 4.0, 1.0));
  const auto sorted = ts.sorted_by_release();
  EXPECT_EQ(sorted[0].id, 0);
}

TEST(TaskSet, ValidateCatchesBadTasks) {
  {
    TaskSet ts;
    ts.add(task(0, 0.0, 1.0, -1.0));
    EXPECT_NE(ts.validate().find("negative workload"), std::string::npos);
  }
  {
    TaskSet ts;
    ts.add(task(0, 1.0, 1.0, 1.0));
    EXPECT_NE(ts.validate().find("empty feasible region"), std::string::npos);
  }
  {
    TaskSet ts;
    ts.add(task(0, 0.0, 1.0, 1.0));
    ts.add(task(0, 0.0, 2.0, 1.0));
    EXPECT_NE(ts.validate().find("duplicate"), std::string::npos);
  }
}

TEST(TaskSet, Aggregates) {
  TaskSet ts;
  ts.add(task(0, 1.0, 2.0, 3.0));
  ts.add(task(1, 0.5, 4.0, 7.0));
  EXPECT_DOUBLE_EQ(ts.min_release(), 0.5);
  EXPECT_DOUBLE_EQ(ts.max_deadline(), 4.0);
  EXPECT_DOUBLE_EQ(ts.total_work(), 10.0);
  EXPECT_DOUBLE_EQ(ts.max_filled_speed(), 3.0);  // 3/1 vs 2
}

TEST(TaskModel, ToString) {
  EXPECT_EQ(to_string(TaskModel::kAgreeable), "agreeable");
  EXPECT_EQ(to_string(TaskModel::kGeneral), "general");
}

}  // namespace
}  // namespace sdem
