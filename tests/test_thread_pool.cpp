// ThreadPool / parallel_for_seeds: the bench harness's determinism
// contract. A --jobs N sweep must produce bit-identical per-seed results
// to the serial loop it replaced, whatever the scheduling, because each
// seed writes only its own slot and folds happen in seed order.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "bench_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ClampsThreadCountToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForVisitsEachIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(visits.size(),
                    [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForHandlesMoreWorkThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(10000, [&](std::size_t i) {
    sum.fetch_add(static_cast<std::int64_t>(i));
  });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(ThreadPool, ParallelForZeroIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool survives the failure and keeps serving.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyParallelForRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(17, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 17);
  }
}

TEST(ParallelForSeeds, SerialWhenPoolIsNull) {
  std::vector<std::uint64_t> seeds;
  std::vector<std::size_t> indices;
  parallel_for_seeds(nullptr, 5, [&](std::uint64_t seed, std::size_t i) {
    seeds.push_back(seed);
    indices.push_back(i);
  });
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForSeeds, SlotsMatchSerialBitForBit) {
  // A seed-keyed pseudo-computation: parallel slots must equal the serial
  // reference exactly, for several job counts.
  const auto compute = [](std::uint64_t seed) {
    double acc = 0.0;
    for (int k = 1; k <= 64; ++k)
      acc += static_cast<double>((seed * 2654435761u + k) % 1000) / 997.0;
    return acc;
  };
  constexpr int kSeeds = 64;
  std::vector<double> reference(kSeeds);
  parallel_for_seeds(nullptr, kSeeds, [&](std::uint64_t seed, std::size_t i) {
    reference[i] = compute(seed);
  });
  for (int jobs : {1, 2, 3, 8}) {
    ThreadPool pool(jobs);
    std::vector<double> got(kSeeds, -1.0);
    parallel_for_seeds(&pool, kSeeds, [&](std::uint64_t seed, std::size_t i) {
      got[i] = compute(seed);
    });
    for (int i = 0; i < kSeeds; ++i)
      ASSERT_EQ(reference[static_cast<std::size_t>(i)],
                got[static_cast<std::size_t>(i)])
          << "jobs=" << jobs << " slot=" << i;
  }
}

// The real acceptance property: the bench harness's seed sweep produces
// bit-identical per-seed savings and identical folded statistics under any
// job count, on the actual paper workload + solver stack.
TEST(ParallelForSeeds, BenchComparisonDeterministicAcrossJobCounts) {
  const auto cfg = bench::paper_cfg();
  const auto make_trace = [](std::uint64_t seed) {
    SyntheticParams p;
    p.num_tasks = 30;
    p.max_interarrival = 0.200;
    return make_synthetic(p, seed * 977 + 3);
  };
  constexpr int kSeeds = 6;
  const auto serial =
      bench::collect_seed_comparisons(make_trace, cfg, kSeeds, nullptr);
  ASSERT_EQ(serial.size(), static_cast<std::size_t>(kSeeds));
  for (int jobs : {2, 4}) {
    ThreadPool pool(jobs);
    const auto parallel =
        bench::collect_seed_comparisons(make_trace, cfg, kSeeds, &pool);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].seed, parallel[i].seed);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(serial[i].sdem_system, parallel[i].sdem_system);
      EXPECT_EQ(serial[i].mbkps_system, parallel[i].mbkps_system);
      EXPECT_EQ(serial[i].sdem_memory, parallel[i].sdem_memory);
      EXPECT_EQ(serial[i].mbkps_memory, parallel[i].mbkps_memory);
      EXPECT_EQ(serial[i].energy_mbkp, parallel[i].energy_mbkp);
      EXPECT_EQ(serial[i].energy_mbkps, parallel[i].energy_mbkps);
      EXPECT_EQ(serial[i].energy_sdem, parallel[i].energy_sdem);
    }
    const bench::SavingStats a = bench::to_saving_stats(serial);
    const bench::SavingStats b = bench::to_saving_stats(parallel);
    EXPECT_EQ(a.sdem_system.mean(), b.sdem_system.mean());
    EXPECT_EQ(a.sdem_system.sem(), b.sdem_system.sem());
    EXPECT_EQ(a.mbkps_memory.mean(), b.mbkps_memory.mean());
  }
}

}  // namespace
}  // namespace sdem
