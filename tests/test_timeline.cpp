// Power-state timeline (obs/timeline.hpp): the governor decision journal
// recorded by the ladder accounting (sched/energy.cpp) and exported as
// Chrome-trace spans + counter tracks. Properties pinned here: recording
// never changes the accounted energy (observation only), the exported
// events are monotone and well-nested per tid, every decision span carries
// a valid outcome, each island gets exactly one sleep-state residency
// counter track, and with the journal disabled (or under SDEM_OBS=OFF,
// where the accounting hooks compile out) the export is empty.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "model/power.hpp"
#include "model/sleep_ladder.hpp"
#include "obs/obs.hpp"
#include "obs/timeline.hpp"
#include "sched/energy.hpp"
#include "sched/schedule.hpp"
#include "sim/governor.hpp"
#include "support/json.hpp"

namespace sdem {
namespace {

/// Three busy islands on core 0 leaving a sub-break-even gap (0.15 s vs
/// xi deep = 40 ms is actually above break-even; use spacing around xi),
/// a long gap, and a trailing gap inside the [0, 2] horizon.
Schedule make_gappy_schedule() {
  Schedule sch;
  sch.add({1, 0, 0.0, 0.10, 1000.0});
  sch.add({2, 0, 0.25, 0.30, 1000.0});
  sch.add({3, 0, 1.50, 1.60, 1000.0});
  return sch;
}

SystemConfig ladder_cfg(int depth) {
  SystemConfig cfg = SystemConfig::paper_default();
  cfg.memory.ladder =
      SleepLadder::geometric(cfg.memory.alpha_m, cfg.memory.xi_m, depth);
  return cfg;
}

EnergyOptions governor_opts(IdleGovernor* gov, int island,
                            const char* label) {
  EnergyOptions opts;
  opts.core_gaps = SleepDiscipline::kOptimal;
  opts.memory_gaps = SleepDiscipline::kGovernor;
  opts.horizon_lo = 0.0;
  opts.horizon_hi = 2.0;
  opts.governor = gov;
  opts.timeline_island = island;
  opts.timeline_label = label;
  return opts;
}

TEST(Timeline, RecordingIsObservationOnly) {
  const Schedule sch = make_gappy_schedule();
  const SystemConfig cfg = ladder_cfg(2);

  obs::timeline::stop();
  obs::timeline::clear();
  IdleGovernor gov_off;
  const EnergyBreakdown off =
      compute_energy(sch, cfg, governor_opts(&gov_off, 0, "off"));

  obs::timeline::start();
  IdleGovernor gov_on;
  const EnergyBreakdown on =
      compute_energy(sch, cfg, governor_opts(&gov_on, 0, "on"));
  obs::timeline::stop();

  EXPECT_DOUBLE_EQ(on.memory_total(), off.memory_total());
  EXPECT_DOUBLE_EQ(on.system_total(), off.system_total());
  EXPECT_DOUBLE_EQ(on.governor_mispredicts, off.governor_mispredicts);
  EXPECT_DOUBLE_EQ(on.governor_aborts, off.governor_aborts);
  EXPECT_DOUBLE_EQ(on.memory_sleep_time, off.memory_sleep_time);
}

TEST(Timeline, ExportIsMonotoneWellNestedWithResidencyTracks) {
  const Schedule sch = make_gappy_schedule();
  const SystemConfig cfg = ladder_cfg(4);

  obs::timeline::start();
  IdleGovernor gov0;
  (void)compute_energy(sch, cfg, governor_opts(&gov0, 0, "islandA"));
  IdleGovernor gov1;
  (void)compute_energy(sch, cfg, governor_opts(&gov1, 1, "islandB"));
  obs::timeline::counter_sample("cpu/core0/speed", 0.0, 1000.0);
  obs::timeline::counter_sample("cpu/core0/speed", 0.1, 0.0);
  obs::timeline::stop();

  // Round-trip through text like the tools do.
  const Json doc = Json::parse(obs::timeline::to_json().dump(2));
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  if (!obs::compiled()) {
    // SDEM_OBS=0: the accounting hooks compile out; counter_sample still
    // records (the API is live), so only the one custom track appears.
    std::size_t spans = 0;
    for (std::size_t i = 0; i < events->size(); ++i) {
      const std::string ph = events->at(i).at("ph").as_string();
      if (ph == "B" || ph == "E") ++spans;
    }
    EXPECT_EQ(spans, 0u);
    return;
  }

  std::map<int, std::vector<std::string>> stacks;
  std::map<int, double> last_ts;
  std::map<std::string, std::size_t> counter_tracks;
  std::size_t decisions = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    const std::string ph = e.at("ph").as_string();
    const int tid = static_cast<int>(e.at("tid").as_number());
    const double ts = e.at("ts").as_number();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "timestamps regress on tid " << tid;
    }
    last_ts[tid] = ts;
    if (ph == "B") {
      ++decisions;
      const std::string name = e.at("name").as_string();
      EXPECT_EQ(name.rfind("gap:", 0), 0u) << name;
      const std::string outcome = e.at("args").at("outcome").as_string();
      EXPECT_TRUE(outcome == "idle" || outcome == "cycle" ||
                  outcome == "mispredict" || outcome == "abort")
          << outcome;
      EXPECT_TRUE(e.at("args").has("predicted_s"));
      EXPECT_TRUE(e.at("args").has("gap_s"));
      EXPECT_TRUE(e.at("args").has("state"));
      stacks[tid].push_back(name);
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty()) << "E without B on tid " << tid;
      EXPECT_EQ(stacks[tid].back(), e.at("name").as_string());
      stacks[tid].pop_back();
    } else if (ph == "C") {
      ++counter_tracks[e.at("name").as_string()];
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed B on tid " << tid;
  }
  // Three gaps per pass (two internal + trailing).
  EXPECT_EQ(decisions, 6u);
  // Exactly one residency track per island, plus the custom CPU track.
  EXPECT_EQ(counter_tracks.count("mem/island0/sleep_state"), 1u);
  EXPECT_EQ(counter_tracks.count("mem/island1/sleep_state"), 1u);
  EXPECT_GE(counter_tracks["cpu/core0/speed"], 2u);
  std::size_t residency_tracks = 0;
  for (const auto& [name, n] : counter_tracks) {
    if (name.rfind("mem/island", 0) == 0) ++residency_tracks;
  }
  EXPECT_EQ(residency_tracks, 2u);
}

TEST(Timeline, DisabledJournalStaysEmpty) {
  obs::timeline::stop();
  obs::timeline::clear();
  EXPECT_FALSE(obs::timeline::enabled());
  EXPECT_EQ(obs::timeline::begin_pass(0, "x"), -1);
  obs::timeline::counter_sample("ignored", 0.0, 1.0);  // disabled: dropped
  const Json doc = obs::timeline::to_json();
  EXPECT_EQ(doc.at("traceEvents").size(), 0u);

  const Schedule sch = make_gappy_schedule();
  IdleGovernor gov;
  (void)compute_energy(sch, ladder_cfg(2), governor_opts(&gov, 0, "x"));
  EXPECT_EQ(obs::timeline::to_json().at("traceEvents").size(), 0u);
}

}  // namespace
}  // namespace sdem
