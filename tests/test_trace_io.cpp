// Tests for schedule CSV round-trip and the ASCII Gantt renderer.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/trace_io.hpp"

namespace sdem {
namespace {

Schedule sample() {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 0.5, 849.123456789});
  s.add(Segment{1, 1, 0.25, 1.0, 1900.0});
  s.add(Segment{2, 0, 2.0, 2.5, 700.0});
  return s;
}

TEST(TraceIo, CsvRoundTripExact) {
  const auto s = sample();
  const auto csv = schedule_to_csv(s);
  const auto back = schedule_from_csv(csv);
  ASSERT_EQ(back.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(back.segments()[i].task_id, s.segments()[i].task_id);
    EXPECT_EQ(back.segments()[i].core, s.segments()[i].core);
    EXPECT_EQ(back.segments()[i].start, s.segments()[i].start);
    EXPECT_EQ(back.segments()[i].end, s.segments()[i].end);
    EXPECT_EQ(back.segments()[i].speed, s.segments()[i].speed);
  }
}

TEST(TraceIo, CsvHeaderRequired) {
  EXPECT_THROW(schedule_from_csv("nope\n1,2,3,4,5\n"), std::invalid_argument);
}

TEST(TraceIo, CsvBadRowRejected) {
  EXPECT_THROW(schedule_from_csv("task,core,start,end,speed\n1,2,oops\n"),
               std::invalid_argument);
}

TEST(TraceIo, CsvEmptySchedule) {
  const auto back = schedule_from_csv(schedule_to_csv(Schedule{}));
  EXPECT_TRUE(back.empty());
}

TEST(TraceIo, TaskSetCsvRoundTrip) {
  TaskSet ts;
  ts.add(Task{3, 0.25, 1.5, 4.125});
  ts.add(Task{7, 1.0, 2.0, 0.5});
  const auto back = task_set_from_csv(task_set_to_csv(ts));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, 3);
  EXPECT_EQ(back[0].release, 0.25);
  EXPECT_EQ(back[1].work, 0.5);
}

TEST(TraceIo, TaskSetCsvRejectsGarbage) {
  EXPECT_THROW(task_set_from_csv("bogus"), std::invalid_argument);
  EXPECT_THROW(task_set_from_csv("id,release,deadline,work\nx\n"),
               std::invalid_argument);
}

TEST(Gantt, ShowsLanesAndMemory) {
  const auto g = render_gantt(sample());
  EXPECT_NE(g.find("core  0"), std::string::npos);
  EXPECT_NE(g.find("core  1"), std::string::npos);
  EXPECT_NE(g.find("MEM"), std::string::npos);
  EXPECT_NE(g.find('#'), std::string::npos);
  EXPECT_NE(g.find('='), std::string::npos);
  // The gap between 1.0 and 2.0 must appear as memory idle (spaces between
  // '=' runs on the MEM lane).
  const auto mem_line = g.substr(g.find("MEM"));
  EXPECT_NE(mem_line.find("= "), std::string::npos);
}

TEST(Gantt, EmptySchedule) {
  EXPECT_EQ(render_gantt(Schedule{}), "(empty schedule)\n");
}

TEST(Gantt, WidthRespected) {
  GanttOptions opts;
  opts.width = 40;
  const auto g = render_gantt(sample(), opts);
  // Each lane line: "core NN |" + width + "|".
  const auto first_line = g.substr(0, g.find('\n'));
  EXPECT_EQ(first_line.size(), std::string("core  0 |").size() + 40 + 1);
}

}  // namespace
}  // namespace sdem
