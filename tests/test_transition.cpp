// Tests for the Section 7 transition-overhead scheme.
#include <gtest/gtest.h>

#include <cmath>

#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/reference.hpp"
#include "core/transition.hpp"
#include "sched/validate.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::expect_near_rel;
using test::make_cfg;
using test::task;

SystemConfig with_overheads(double alpha, double alpha_m, double xi,
                            double xi_m, double s_up = 1900.0) {
  auto cfg = make_cfg(alpha, alpha_m, s_up);
  cfg.core.xi = xi;
  cfg.memory.xi_m = xi_m;
  return cfg;
}

TEST(Transition, ZeroOverheadReducesToSection4) {
  // With xi == xi_m == 0 the Section 7 scheme must match Section 4 energies.
  for (double alpha : {0.0, 0.31}) {
    const auto cfg = with_overheads(alpha, 4.0, 0.0, 0.0);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const TaskSet ts = make_common_release(1 + seed % 6, 0.0, seed * 3);
      const auto t7 = solve_common_release_transition(ts, cfg);
      const auto s4 = alpha > 0.0 ? solve_common_release_alpha(ts, cfg)
                                  : solve_common_release_alpha0(ts, cfg);
      ASSERT_TRUE(t7.feasible && s4.feasible) << "seed " << seed;
      expect_near_rel(s4.energy, t7.energy, 1e-6, "Section 7 vs 4");
    }
  }
}

TEST(Transition, MatchesDenseReference) {
  for (double xi_m : {0.005, 0.040}) {
    for (double xi : {0.0, 0.002, 0.020}) {
      const auto cfg = with_overheads(0.31, 4.0, xi, xi_m);
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const TaskSet ts = make_common_release(1 + seed % 5, 0.0, seed * 7);
        const auto t7 = solve_common_release_transition(ts, cfg);
        ASSERT_TRUE(t7.feasible);
        const double ref = reference_common_release_transition(ts, cfg);
        expect_near_rel(ref, t7.energy, 1e-5, "vs dense reference");
      }
    }
  }
}

TEST(Transition, LargeBreakEvenSuppressesMemorySleep) {
  // Table 3, last row: when the achievable sleep is below both break-even
  // times, the memory stays awake (Delta = 0) and tasks run at s_c.
  TaskSet ts;
  ts.add(task(0, 0.0, 0.100, 60.0));  // fills most of the interval at s_m
  // At s_m ~ 849 MHz the task runs ~70 ms of the 100 ms region: the
  // potential sleep (~30 ms) is below xi_m = 80 ms.
  const auto cfg = with_overheads(0.31, 4.0, 0.0, 0.080, 0.0);
  const auto res = solve_common_release_transition(ts, cfg);
  ASSERT_TRUE(res.feasible);
  // Either no sleep at all, or the memory idles: sleep_time counts the gap,
  // but the energy must equal the idle-through alternative.
  const double idle_energy = [&] {
    // Stretch to minimize with an always-on memory: min over run of
    // alpha_m * H + core terms. Evaluate both task candidates.
    const double H = 0.100;
    double run = 0.0, speed = 0.0;
    auto cfg_idle = cfg;
    cfg_idle.memory.xi_m = 1e9;  // sleeping can never pay
    const double c =
        transition_task_cost(ts[0], cfg_idle, H, H, run, speed);
    return c + cfg.memory.alpha_m * H;
  }();
  EXPECT_LE(res.energy, idle_energy + 1e-9);
}

TEST(Transition, SmallBreakEvenRecoversRaceToIdle) {
  // xi_m -> 0: sleeping is free, so the optimum approaches the Section 4
  // result from above.
  TaskSet ts = make_common_release(5, 0.0, 21);
  const auto cfg0 = with_overheads(0.31, 4.0, 0.0, 0.0);
  const auto base = solve_common_release_alpha(ts, cfg0);
  ASSERT_TRUE(base.feasible);
  double prev = 1e18;
  double last_xi_m = 0.0;
  for (double xi_m : {0.050, 0.010, 0.001, 0.0001}) {
    const auto cfg = with_overheads(0.31, 4.0, 0.0, xi_m);
    const auto res = solve_common_release_transition(ts, cfg);
    ASSERT_TRUE(res.feasible);
    EXPECT_LE(res.energy, prev + 1e-12) << "monotone in xi_m";
    prev = res.energy;
    last_xi_m = xi_m;
  }
  // The residual gap is at most the one remaining transition pair
  // alpha_m * xi_m (plus numerical slack), which vanishes with xi_m.
  EXPECT_GE(prev, base.energy - 1e-9);
  EXPECT_LE(prev, base.energy + 4.0 * last_xi_m + 1e-6 * base.energy);
}

TEST(Transition, CoreBreakEvenSwitchesRaceToStretch) {
  // One task, huge core break-even: racing to s_m then idling beats nothing
  // — the core should stretch instead (s_c = s_f). With tiny break-even it
  // races at s_m.
  const Task t = task(0, 0.0, 0.100, 8.0);
  const double H = 0.100;
  auto race_cfg = with_overheads(0.31, 0.0, 0.001, 0.0, 0.0);
  double run = 0.0, speed = 0.0;
  transition_task_cost(t, race_cfg, H, H, run, speed);
  const double s_m = race_cfg.core.critical_speed_raw();
  expect_near_rel(s_m, speed, 1e-9, "races at s_m with cheap transitions");

  auto stretch_cfg = with_overheads(0.31, 0.0, 10.0, 0.0, 0.0);
  transition_task_cost(t, stretch_cfg, H, H, run, speed);
  expect_near_rel(8.0 / 0.100, speed, 1e-9,
                  "stretches at filled speed with huge break-even");
}

TEST(Transition, ConstrainedCriticalSpeedDefinition) {
  // SystemConfig::constrained_critical_speed follows the paper's rule.
  auto cfg = with_overheads(0.31, 0.0, 0.010, 0.0, 0.0);
  const Task roomy = task(0, 0.0, 1.0, 8.0);   // runs 9.4 ms at s_m, slack ok
  const Task tight = task(1, 0.0, 0.012, 8.0); // region too tight for xi
  const double s_m = cfg.core.critical_speed_raw();
  expect_near_rel(s_m, cfg.constrained_critical_speed(roomy, 1.0), 1e-9,
                  "roomy task keeps s_m");
  expect_near_rel(tight.filled_speed(),
                  cfg.constrained_critical_speed(tight, 0.012), 1e-9,
                  "tight task stretches");
}

TEST(Transition, SchedulesAreFeasible) {
  const auto cfg = with_overheads(0.31, 4.0, 0.002, 0.040);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const TaskSet ts = make_common_release(1 + seed % 8, 0.0, seed * 31);
    const auto res = solve_common_release_transition(ts, cfg);
    ASSERT_TRUE(res.feasible) << "seed " << seed;
    const auto v = validate_schedule(res.schedule, ts, cfg);
    EXPECT_TRUE(v.ok) << v.error << " seed " << seed;
  }
}

}  // namespace
}  // namespace sdem
