// Shared helpers for the sdem test suites.
#pragma once

#include <gtest/gtest.h>

#include "model/power.hpp"
#include "model/task.hpp"

namespace sdem::test {

/// Config with the paper's dynamic-power shape and configurable statics.
/// s_up defaults to 1900 MHz; pass 0 for unconstrained speeds.
inline SystemConfig make_cfg(double alpha, double alpha_m,
                             double s_up = 1900.0, double lambda = 3.0) {
  SystemConfig cfg;
  cfg.core.alpha = alpha;
  cfg.core.beta = 2.53e-10;
  cfg.core.lambda = lambda;
  cfg.core.s_min = 0.0;
  cfg.core.s_up = s_up;
  cfg.memory.alpha_m = alpha_m;
  cfg.num_cores = 0;  // unbounded
  return cfg;
}

inline Task task(int id, double release, double deadline, double work) {
  Task t;
  t.id = id;
  t.release = release;
  t.deadline = deadline;
  t.work = work;
  return t;
}

/// Relative-tolerance comparison for energies.
inline void expect_near_rel(double expected, double actual, double rel,
                            const char* what = "") {
  const double scale = std::max({1e-12, std::abs(expected), std::abs(actual)});
  EXPECT_NEAR(expected, actual, rel * scale) << what;
}

}  // namespace sdem::test
