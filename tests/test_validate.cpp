// Tests for the schedule validator: one test per failure mode.
#include <gtest/gtest.h>

#include "sched/validate.hpp"
#include "test_util.hpp"

namespace sdem {
namespace {

using test::make_cfg;
using test::task;

TaskSet one_task() {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 100.0));
  return ts;
}

TEST(Validate, AcceptsCorrectSchedule) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 100.0});
  const auto v = validate_schedule(s, one_task(), make_cfg(0.0, 4.0));
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(Validate, UnknownTask) {
  Schedule s;
  s.add(Segment{7, 0, 0.0, 1.0, 100.0});
  const auto v = validate_schedule(s, one_task(), make_cfg(0.0, 4.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("unknown task"), std::string::npos);
}

TEST(Validate, StartBeforeRelease) {
  TaskSet ts;
  ts.add(task(0, 0.5, 1.5, 100.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 100.0});
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("before release"), std::string::npos);
}

TEST(Validate, EndAfterDeadline) {
  Schedule s;
  s.add(Segment{0, 0, 0.5, 1.5, 100.0});
  const auto v = validate_schedule(s, one_task(), make_cfg(0.0, 4.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("after deadline"), std::string::npos);
}

TEST(Validate, WorkloadMismatch) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 0.5, 100.0});  // only half the work
  const auto v = validate_schedule(s, one_task(), make_cfg(0.0, 4.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("executed"), std::string::npos);
}

TEST(Validate, SpeedAboveCap) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 2000.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 2000.0});
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0, 1900.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("exceeds s_up"), std::string::npos);
}

TEST(Validate, CoreOverlap) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 50.0));
  ts.add(task(1, 0.0, 1.0, 50.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 0.5, 100.0});
  s.add(Segment{1, 0, 0.4, 0.9, 100.0});
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("overlap"), std::string::npos);
}

TEST(Validate, Migration) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 100.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 0.5, 100.0});
  s.add(Segment{0, 1, 0.5, 1.0, 100.0});
  ValidateOptions opts;
  opts.require_non_migrating = true;
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0), opts);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("migrates"), std::string::npos);
  opts.require_non_migrating = false;
  EXPECT_TRUE(validate_schedule(s, ts, make_cfg(0.0, 4.0), opts).ok);
}

TEST(Validate, Preemption) {
  TaskSet ts;
  ts.add(task(0, 0.0, 2.0, 100.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 0.5, 100.0});
  s.add(Segment{0, 0, 1.0, 1.5, 100.0});
  ValidateOptions opts;
  opts.require_non_preemptive = true;
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0), opts);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("preempted"), std::string::npos);
}

TEST(Validate, BoundedCoreCount) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 50.0));
  ts.add(task(1, 0.0, 1.0, 50.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 50.0});
  s.add(Segment{1, 5, 0.0, 1.0, 50.0});  // core index 5
  auto cfg = make_cfg(0.0, 4.0);
  cfg.num_cores = 2;
  const auto v = validate_schedule(s, ts, cfg);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("cores"), std::string::npos);
}

TEST(Validate, EmptySegmentAndBadSpeed) {
  Schedule s1;
  s1.add(Segment{0, 0, 1.0, 1.0, 100.0});
  EXPECT_FALSE(validate_schedule(s1, one_task(), make_cfg(0.0, 4.0)).ok);
  Schedule s2;
  s2.add(Segment{0, 0, 0.0, 1.0, 0.0});
  EXPECT_FALSE(validate_schedule(s2, one_task(), make_cfg(0.0, 4.0)).ok);
}

}  // namespace
}  // namespace sdem
