// Tests for the schedule validator: one test per failure mode.
#include <gtest/gtest.h>

#include <algorithm>

#include "sched/validate.hpp"
#include "test_util.hpp"

namespace sdem {
namespace {

using test::make_cfg;
using test::task;

TaskSet one_task() {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 100.0));
  return ts;
}

TEST(Validate, AcceptsCorrectSchedule) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 100.0});
  const auto v = validate_schedule(s, one_task(), make_cfg(0.0, 4.0));
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(Validate, UnknownTask) {
  Schedule s;
  s.add(Segment{7, 0, 0.0, 1.0, 100.0});
  const auto v = validate_schedule(s, one_task(), make_cfg(0.0, 4.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("unknown task"), std::string::npos);
}

TEST(Validate, StartBeforeRelease) {
  TaskSet ts;
  ts.add(task(0, 0.5, 1.5, 100.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 100.0});
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("before release"), std::string::npos);
}

TEST(Validate, EndAfterDeadline) {
  Schedule s;
  s.add(Segment{0, 0, 0.5, 1.5, 100.0});
  const auto v = validate_schedule(s, one_task(), make_cfg(0.0, 4.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("after deadline"), std::string::npos);
}

TEST(Validate, WorkloadMismatch) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 0.5, 100.0});  // only half the work
  const auto v = validate_schedule(s, one_task(), make_cfg(0.0, 4.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("executed"), std::string::npos);
}

TEST(Validate, SpeedAboveCap) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 2000.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 2000.0});
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0, 1900.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("exceeds s_up"), std::string::npos);
}

TEST(Validate, CoreOverlap) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 50.0));
  ts.add(task(1, 0.0, 1.0, 50.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 0.5, 100.0});
  s.add(Segment{1, 0, 0.4, 0.9, 100.0});
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0));
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("overlap"), std::string::npos);
}

TEST(Validate, Migration) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 100.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 0.5, 100.0});
  s.add(Segment{0, 1, 0.5, 1.0, 100.0});
  ValidateOptions opts;
  opts.require_non_migrating = true;
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0), opts);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("migrates"), std::string::npos);
  opts.require_non_migrating = false;
  EXPECT_TRUE(validate_schedule(s, ts, make_cfg(0.0, 4.0), opts).ok);
}

TEST(Validate, Preemption) {
  TaskSet ts;
  ts.add(task(0, 0.0, 2.0, 100.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 0.5, 100.0});
  s.add(Segment{0, 0, 1.0, 1.5, 100.0});
  ValidateOptions opts;
  opts.require_non_preemptive = true;
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0), opts);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("preempted"), std::string::npos);
}

TEST(Validate, BoundedCoreCount) {
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 50.0));
  ts.add(task(1, 0.0, 1.0, 50.0));
  Schedule s;
  s.add(Segment{0, 0, 0.0, 1.0, 50.0});
  s.add(Segment{1, 5, 0.0, 1.0, 50.0});  // core index 5
  auto cfg = make_cfg(0.0, 4.0);
  cfg.num_cores = 2;
  const auto v = validate_schedule(s, ts, cfg);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("cores"), std::string::npos);
}

TEST(Validate, EmptySegmentAndBadSpeed) {
  Schedule s1;
  s1.add(Segment{0, 0, 1.0, 1.0, 100.0});
  EXPECT_FALSE(validate_schedule(s1, one_task(), make_cfg(0.0, 4.0)).ok);
  Schedule s2;
  s2.add(Segment{0, 0, 0.0, 1.0, 0.0});
  EXPECT_FALSE(validate_schedule(s2, one_task(), make_cfg(0.0, 4.0)).ok);
}

TEST(Validate, DeadlineExactCompletionIsFeasible) {
  // Ending exactly at d_i (and starting exactly at r_i) is feasible: the
  // window checks allow time_tol slack, and an exact boundary needs none.
  TaskSet ts;
  ts.add(task(0, 0.25, 1.25, 100.0));
  Schedule s;
  s.add(Segment{0, 0, 0.25, 1.25, 100.0});
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0));
  EXPECT_TRUE(v.ok) << v.describe();
  EXPECT_TRUE(v.violations.empty());
}

TEST(Validate, ZeroLengthPieceIsStructured) {
  Schedule s;
  s.add(Segment{0, 0, 0.5, 0.5, 100.0});
  const auto v = validate_schedule(s, one_task(), make_cfg(0.0, 4.0));
  ASSERT_FALSE(v.ok);
  ASSERT_FALSE(v.violations.empty());
  const auto& viol = v.violations.front();
  EXPECT_EQ(viol.kind, ScheduleViolation::Kind::kEmptySegment);
  EXPECT_EQ(viol.task_id, 0);
  EXPECT_DOUBLE_EQ(viol.at, 0.5);
  EXPECT_EQ(v.error, viol.message);
}

TEST(Validate, CollectsEveryViolationNotJustTheFirst) {
  // One schedule, three independent problems: an unknown task, a window
  // violation, and a work mismatch on the known task.
  TaskSet ts;
  ts.add(task(0, 0.0, 1.0, 100.0));
  Schedule s;
  s.add(Segment{9, 0, 0.0, 0.5, 10.0});   // unknown task id
  s.add(Segment{0, 1, 0.5, 2.0, 100.0});  // ends after deadline, wrong work
  const auto v = validate_schedule(s, ts, make_cfg(0.0, 4.0));
  ASSERT_FALSE(v.ok);
  EXPECT_GE(v.violations.size(), 3u);
  bool saw_unknown = false, saw_deadline = false, saw_work = false;
  for (const auto& viol : v.violations) {
    saw_unknown |= viol.kind == ScheduleViolation::Kind::kUnknownTask;
    saw_deadline |= viol.kind == ScheduleViolation::Kind::kAfterDeadline;
    saw_work |= viol.kind == ScheduleViolation::Kind::kWorkMismatch;
  }
  EXPECT_TRUE(saw_unknown);
  EXPECT_TRUE(saw_deadline);
  EXPECT_TRUE(saw_work);
  EXPECT_EQ(v.error, v.violations.front().message);
  // describe() renders one "kind: message" line per violation.
  const std::string text = v.describe();
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(),
                                                '\n')),
            v.violations.size() - 1);
}

TEST(Validate, MaxViolationsCapsCollection) {
  Schedule s;
  for (int i = 0; i < 10; ++i) {
    s.add(Segment{100 + i, 0, 0.1 * i, 0.1 * i + 0.05, 10.0});
  }
  ValidateOptions opts;
  opts.max_violations = 4;
  const auto v = validate_schedule(s, one_task(), make_cfg(0.0, 4.0), opts);
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.violations.size(), 4u);
}

TEST(Validate, KindNamesAreStable) {
  // The shrinker keys on these names; renames would silently break
  // signature-preserving reduction.
  EXPECT_EQ(to_string(ScheduleViolation::Kind::kOverlap), "overlap");
  EXPECT_EQ(to_string(ScheduleViolation::Kind::kWorkMismatch),
            "work-mismatch");
  EXPECT_EQ(to_string(ScheduleViolation::Kind::kAfterDeadline),
            "after-deadline");
  EXPECT_EQ(to_string(ScheduleViolation::Kind::kEmptySegment),
            "empty-segment");
}

}  // namespace
}  // namespace sdem
