// Tests for the physical voltage/frequency model and its polynomial fit.
#include <gtest/gtest.h>

#include <cmath>

#include "model/voltage.hpp"

namespace sdem {
namespace {

VoltageModel a57ish() {
  VoltageModel m;
  m.c_ef = 3.0e-10;
  m.v_t = 0.35;
  m.kappa = 2800.0;
  return m;
}

TEST(Voltage, SpeedVoltageRoundTrip) {
  const auto m = a57ish();
  for (double s : {100.0, 700.0, 1200.0, 1900.0}) {
    const double v = m.vdd_for(s);
    EXPECT_GT(v, m.v_t);
    EXPECT_NEAR(m.speed_at(v), s, 1e-6 * s);
  }
}

TEST(Voltage, SpeedMonotoneInVoltage) {
  const auto m = a57ish();
  double prev = 0.0;
  for (double v = 0.4; v <= 1.4; v += 0.05) {
    const double s = m.speed_at(v);
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_EQ(m.speed_at(m.v_t), 0.0);
  EXPECT_EQ(m.speed_at(0.1), 0.0);
}

TEST(Voltage, PowerConvexIncreasing) {
  const auto m = a57ish();
  // P(s) increasing and convex: second differences positive.
  double p0 = m.dynamic_power(400.0);
  double p1 = m.dynamic_power(800.0);
  double p2 = m.dynamic_power(1200.0);
  double p3 = m.dynamic_power(1600.0);
  EXPECT_LT(p0, p1);
  EXPECT_LT(p1, p2);
  EXPECT_GT(p2 - p1, p1 - p0);
  EXPECT_GT(p3 - p2, p2 - p1);
}

TEST(Voltage, EnergyPerCycleIncreasesWithSpeed) {
  // Without static power, slower is always better per cycle — the physical
  // model agrees with the polynomial abstraction's qualitative behavior.
  const auto m = a57ish();
  EXPECT_LT(m.exec_energy(1.0, 700.0), m.exec_energy(1.0, 1900.0));
}

TEST(Voltage, PowerLawFitIsNearCubic) {
  // Over the A57's DVFS window the physical model is well approximated by
  // beta * s^lambda with lambda close to 3 — the paper's abstraction.
  const auto m = a57ish();
  const PowerFit fit = fit_power_law(m, 700.0, 1900.0);
  EXPECT_GT(fit.lambda, 1.5);
  EXPECT_LT(fit.lambda, 3.5);
  EXPECT_LT(fit.max_rel_error, 0.08) << "fit should be within 8% everywhere";
  EXPECT_GT(fit.beta, 0.0);
}

TEST(Voltage, FitReproducesExactPowerLaw) {
  // Sanity: fitting data that *is* a power law recovers it exactly.
  // speed_at with v_t = 0 gives s = kappa * v, so P = c_ef s^3 / kappa^2.
  VoltageModel m;
  m.v_t = 0.0;
  m.kappa = 1000.0;
  m.c_ef = 2.0e-9;
  const PowerFit fit = fit_power_law(m, 100.0, 2000.0);
  EXPECT_NEAR(fit.lambda, 3.0, 1e-9);
  EXPECT_NEAR(fit.beta, 2.0e-9 / 1e6, 1e-12);
  EXPECT_LT(fit.max_rel_error, 1e-9);
}

TEST(Voltage, ZeroWorkCostsNothing) {
  EXPECT_EQ(a57ish().exec_energy(0.0, 1000.0), 0.0);
}

}  // namespace
}  // namespace sdem
