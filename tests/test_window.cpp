// Sliding-window histograms (obs/window.hpp): the acceptance properties
// behind the METRICS verb's windowed quantiles — slices rotate lazily and
// reclaim their ring slot across boundaries, samples age out of the merge
// once the window passes them, empty windows read as zeros, and the
// registry-level shard merge is invariant to how samples are partitioned
// across threads (the jobs-1-vs-4 determinism contract). Windows live in
// the registry in both SDEM_OBS modes — only instrumentation *sites* gate
// on the flag — so every test here runs in both builds.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "obs/window.hpp"

namespace sdem {
namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;

TEST(Window, EmptyWindowReadsZeros) {
  obs::WindowCell cell;
  obs::WindowValue v;
  obs::merge_window(v, cell, 5 * kSec);
  EXPECT_EQ(v.count, 0u);
  EXPECT_DOUBLE_EQ(v.sum(), 0.0);
  EXPECT_DOUBLE_EQ(v.mean(), 0.0);
  EXPECT_DOUBLE_EQ(v.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(v.percentile(0.999), 0.0);
}

TEST(Window, SamplesAgeOutAcrossSliceBoundaries) {
  obs::WindowCell cell;  // default spec: 1 s slices, 8 of them
  cell.add(100.0, 0 * kSec + 1);  // slice 0
  cell.add(200.0, 1 * kSec + 1);  // slice 1

  // as_of in slice 1: the window [slice -6, slice 1] covers both.
  obs::WindowValue both;
  obs::merge_window(both, cell, 1 * kSec + 2);
  EXPECT_EQ(both.count, 2u);
  EXPECT_DOUBLE_EQ(both.min, 100.0);
  EXPECT_DOUBLE_EQ(both.max, 200.0);

  // as_of in slice 8: the window is [slice 1, slice 8] — slice 0 aged out.
  obs::WindowValue one;
  obs::merge_window(one, cell, 8 * kSec);
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.min, 200.0);

  // as_of in slice 9: everything aged out.
  obs::WindowValue none;
  obs::merge_window(none, cell, 9 * kSec);
  EXPECT_EQ(none.count, 0u);
}

TEST(Window, RotationReclaimsTheRingSlot) {
  obs::WindowCell cell;
  cell.add(1.0, 500);           // slice 0
  cell.add(2.0, 8 * kSec + 1);  // slice 8: same ring slot as slice 0
  // Even with an as_of whose window would still span slice 0, the slot now
  // holds slice 8 — the old samples are gone, not double-counted.
  obs::WindowValue v;
  obs::merge_window(v, cell, 8 * kSec + 1);
  EXPECT_EQ(v.count, 1u);
  EXPECT_DOUBLE_EQ(v.min, 2.0);
  EXPECT_DOUBLE_EQ(v.max, 2.0);
}

TEST(Window, PercentilesComeFromLogBucketUpperEdges) {
  obs::WindowCell cell;
  for (int i = 0; i < 100; ++i) {
    cell.add(1000.0, kSec + static_cast<std::uint64_t>(i));  // bucket (512, 1024]
  }
  cell.add(1.0e6, kSec + 100);  // one outlier, bucket (2^19, 2^20]
  obs::WindowValue v;
  obs::merge_window(v, cell, kSec + 200);
  ASSERT_EQ(v.count, 101u);
  // Median lands in the 1000-sample bucket: estimator reports its upper
  // edge 2^10, clamped by nothing (max is far larger).
  EXPECT_DOUBLE_EQ(v.percentile(0.5), 1024.0);
  // p999 crosses in the outlier's bucket; the estimate clamps to max.
  EXPECT_DOUBLE_EQ(v.percentile(0.999), 1.0e6);
  EXPECT_NEAR(v.mean(), (100 * 1000.0 + 1.0e6) / 101.0, 1e-3);
}

/// Merge the registry's "test_window/merge" cells, writing the canned
/// samples from `threads` workers (round-robin partition).
obs::WindowValue run_partitioned(int threads) {
  obs::Registry::instance().reset();
  std::vector<std::pair<double, std::uint64_t>> samples;
  for (int i = 0; i < 256; ++i) {
    samples.emplace_back(1.0 + (i * 37) % 5000,
                         kSec * (1 + static_cast<std::uint64_t>(i % 8)));
  }
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&samples, t, threads] {
      obs::WindowCell* cell = obs::Registry::instance().window_cell(
          "test_window/merge", obs::WindowSpec{});
      for (std::size_t i = static_cast<std::size_t>(t); i < samples.size();
           i += static_cast<std::size_t>(threads)) {
        cell->add(samples[i].first, samples[i].second);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (auto& [name, value] :
       obs::Registry::instance().window_values(8 * kSec)) {
    if (name == "test_window/merge") return value;
  }
  return obs::WindowValue{};
}

TEST(Window, ShardMergeIsThreadCountInvariant) {
  const obs::WindowValue serial = run_partitioned(1);
  const obs::WindowValue sharded = run_partitioned(4);
  ASSERT_EQ(serial.count, 256u);
  EXPECT_EQ(sharded.count, serial.count);
  EXPECT_EQ(sharded.sum_fx, serial.sum_fx);
  EXPECT_DOUBLE_EQ(sharded.min, serial.min);
  EXPECT_DOUBLE_EQ(sharded.max, serial.max);
  ASSERT_EQ(sharded.buckets, serial.buckets);
  EXPECT_DOUBLE_EQ(sharded.percentile(0.5), serial.percentile(0.5));
  EXPECT_DOUBLE_EQ(sharded.percentile(0.99), serial.percentile(0.99));
}

TEST(Window, FirstRegistrationFixesTheSpec) {
  obs::Registry::instance().reset();
  obs::WindowSpec fine;
  fine.slice_ns = kSec / 10;
  fine.slices = 4;
  obs::WindowCell* a = obs::Registry::instance().window_cell(
      "test_window/spec", fine);
  obs::WindowCell* b = obs::Registry::instance().window_cell(
      "test_window/spec", obs::WindowSpec{});  // ignored: already registered
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->spec.slice_ns, fine.slice_ns);
  EXPECT_EQ(a->spec.slices, fine.slices);
}

}  // namespace
}  // namespace sdem
