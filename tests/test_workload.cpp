// Tests for the workload generators (§8.1).
#include <gtest/gtest.h>

#include "sim/metrics.hpp"
#include "workload/dspstone.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

TEST(Synthetic, RangesMatchPaperSetup) {
  SyntheticParams p;
  p.num_tasks = 200;
  p.max_interarrival = 0.400;
  const TaskSet ts = make_synthetic(p, 1);
  ASSERT_EQ(ts.size(), 200u);
  double prev_release = 0.0;
  for (const auto& t : ts.tasks()) {
    EXPECT_GE(t.work, 2.0);
    EXPECT_LE(t.work, 5.0);
    EXPECT_GE(t.region(), 0.010 - 1e-12);
    EXPECT_LE(t.region(), 0.120 + 1e-12);
    EXPECT_GE(t.release - prev_release, 0.0);
    EXPECT_LE(t.release - prev_release, 0.400);
    prev_release = t.release;
  }
  EXPECT_TRUE(ts.validate().empty());
}

TEST(Synthetic, Deterministic) {
  SyntheticParams p;
  p.num_tasks = 50;
  const TaskSet a = make_synthetic(p, 99);
  const TaskSet b = make_synthetic(p, 99);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].release, b[i].release);
    EXPECT_EQ(a[i].work, b[i].work);
  }
  const TaskSet c = make_synthetic(p, 100);
  EXPECT_NE(a[0].work, c[0].work);
}

TEST(CommonReleaseGen, AllReleasedTogether) {
  const TaskSet ts = make_common_release(20, 1.5, 3);
  EXPECT_TRUE(ts.is_common_release());
  for (const auto& t : ts.tasks()) EXPECT_EQ(t.release, 1.5);
  EXPECT_EQ(ts.classify(), TaskModel::kCommonRelease);
}

TEST(AgreeableGen, ProducesAgreeableSets) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const TaskSet ts = make_agreeable(15, seed);
    EXPECT_TRUE(ts.is_agreeable()) << "seed " << seed;
    EXPECT_TRUE(ts.validate().empty());
  }
}

TEST(Bursty, StructureAndDeterminism) {
  BurstyParams p;
  p.num_tasks = 32;
  p.burst_size = 8;
  const TaskSet a = make_bursty(p, 3);
  const TaskSet b = make_bursty(p, 3);
  ASSERT_EQ(a.size(), 32u);
  EXPECT_TRUE(a.validate().empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].release, b[i].release);
  }
  // Bursts: within a burst spacing <= intra_spacing * burst_size, between
  // bursts at least 0.5 * burst_gap.
  int big_gaps = 0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    const double gap = a[i].release - a[i - 1].release;
    if (gap > 0.25 * p.burst_gap) ++big_gaps;
  }
  EXPECT_EQ(big_gaps, 3);  // 32 tasks / 8 per burst -> 3 inter-burst gaps
}

TEST(Bursty, SdemOnShinesOnBursts) {
  // Bursts are the best case for alignment: everything in a burst overlaps.
  auto cfg = SystemConfig::paper_default();
  BurstyParams p;
  p.num_tasks = 80;
  double sdem = 0.0, mbkps = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto cmp = run_comparison(make_bursty(p, seed * 7), cfg);
    sdem += cmp.system_saving_sdem();
    mbkps += cmp.system_saving_mbkps();
    EXPECT_EQ(cmp.sdem.deadline_misses, 0);
  }
  EXPECT_GT(sdem, mbkps);
}

TEST(Dspstone, CycleCountFormulas) {
  // FFT-1024: 5120 butterflies * 16 cycles = 81920 cycles per frame.
  EXPECT_NEAR(fft1024_megacycles(1), 0.08192, 1e-12);
  EXPECT_NEAR(fft1024_megacycles(16), 1.31072, 1e-12);
  // Matmul: 2 X Y Z cycles.
  EXPECT_NEAR(matmul_megacycles(10, 20, 30), 0.012, 1e-12);
}

TEST(Dspstone, TraceStructure) {
  DspstoneParams p;
  p.num_tasks = 64;
  p.utilization_u = 4.0;
  const TaskSet ts = make_dspstone(p, 7);
  ASSERT_EQ(ts.size(), 64u);
  EXPECT_TRUE(ts.validate().empty());
  for (const auto& t : ts.tasks()) {
    // Region equals the processing time at 16.5 MHz.
    EXPECT_NEAR(t.region(), t.work / 16.5, 1e-9);
  }
}

TEST(Dspstone, HigherUMeansSparser) {
  DspstoneParams lo, hi;
  lo.num_tasks = hi.num_tasks = 64;
  lo.utilization_u = 2.0;
  hi.utilization_u = 9.0;
  const TaskSet dense = make_dspstone(lo, 5);
  const TaskSet sparse = make_dspstone(hi, 5);
  EXPECT_LT(dense.tasks().back().release, sparse.tasks().back().release);
}

TEST(Dspstone, FftInstancesShareWorkload) {
  DspstoneParams p;
  p.num_tasks = 32;
  const TaskSet ts = make_dspstone(p, 11);
  // Stream 0 is FFT: all its instances have the same cycle count.
  double fft_mc = fft1024_megacycles(p.fft_batch);
  int fft_count = 0;
  for (const auto& t : ts.tasks()) {
    if (std::abs(t.work - fft_mc) < 1e-12) ++fft_count;
  }
  EXPECT_GT(fft_count, 4);
}

}  // namespace
}  // namespace sdem
