// Tests for the YDS offline optimal single-core speed-scaling substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/yds.hpp"
#include "model/task.hpp"
#include "sched/validate.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sdem {
namespace {

using test::make_cfg;

std::vector<YdsJob> to_jobs(const TaskSet& ts) {
  std::vector<YdsJob> jobs;
  for (const auto& t : ts.tasks()) {
    jobs.push_back({t.id, t.release, t.deadline, t.work});
  }
  return jobs;
}

void expect_feasible(const Schedule& s, const TaskSet& ts) {
  auto cfg = make_cfg(0.0, 0.0, 0.0);
  ValidateOptions opts;
  opts.require_non_migrating = true;
  opts.enforce_speed_bounds = false;
  const auto v = validate_schedule(s, ts, cfg, opts);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(Yds, SingleJobRunsAtDensity) {
  const auto s = yds_schedule({{0, 0.0, 2.0, 10.0}});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s.segments()[0].speed, 5.0, 1e-12);
  EXPECT_NEAR(s.segments()[0].start, 0.0, 1e-12);
  EXPECT_NEAR(s.segments()[0].end, 2.0, 1e-12);
}

TEST(Yds, TwoDisjointJobs) {
  const auto s = yds_schedule({{0, 0.0, 1.0, 5.0}, {1, 2.0, 3.0, 7.0}});
  TaskSet ts;
  ts.add(test::task(0, 0.0, 1.0, 5.0));
  ts.add(test::task(1, 2.0, 3.0, 7.0));
  expect_feasible(s, ts);
}

TEST(Yds, NestedJobPreemptsCorrectly) {
  // A dense inner job inside a loose outer job: the outer job must be
  // preempted around the inner interval and both must finish.
  const auto s = yds_schedule({{0, 0.0, 10.0, 10.0}, {1, 4.0, 5.0, 20.0}});
  TaskSet ts;
  ts.add(test::task(0, 0.0, 10.0, 10.0));
  ts.add(test::task(1, 4.0, 5.0, 20.0));
  auto cfg = make_cfg(0.0, 0.0, 0.0);
  ValidateOptions opts;
  opts.enforce_speed_bounds = false;
  const auto v = validate_schedule(s, ts, cfg, opts);
  EXPECT_TRUE(v.ok) << v.error;
  // Inner critical interval runs at density 20.
  for (const auto& seg : s.segments()) {
    if (seg.task_id == 1) EXPECT_NEAR(seg.speed, 20.0, 1e-9);
  }
}

TEST(Yds, EqualDensityMergesIntoOneSpeed) {
  const auto s = yds_schedule({{0, 0.0, 1.0, 3.0}, {1, 1.0, 2.0, 3.0}});
  for (const auto& seg : s.segments()) EXPECT_NEAR(seg.speed, 3.0, 1e-9);
}

TEST(Yds, FeasibleOnRandomGeneralSets) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SyntheticParams p;
    p.num_tasks = 12;
    p.max_interarrival = 0.020;
    const TaskSet ts = make_synthetic(p, seed);
    const auto s = yds_schedule(to_jobs(ts));
    expect_feasible(s, ts);
  }
}

TEST(Yds, OptimalSpeedProfileIsStaircase) {
  // Energy of YDS <= energy of the naive filled-speed schedule.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SyntheticParams p;
    p.num_tasks = 8;
    p.max_interarrival = 0.010;
    const TaskSet ts = make_synthetic(p, seed * 31);
    const auto s = yds_schedule(to_jobs(ts));
    const double e = yds_energy(s, 2.53e-10, 3.0);
    // Naive: each job alone at filled speed (ignores overlap: lower bound
    // on per-job energy, so YDS on shared core must cost at least that...
    // but never more than running every job at the max density speed).
    double lower = 0.0;
    for (const auto& t : ts.tasks()) {
      lower += 2.53e-10 * std::pow(t.filled_speed(), 3.0) * t.region() *
               std::pow(t.work / (t.filled_speed() * t.region()), 1.0);
    }
    EXPECT_GE(e, 0.0);
    EXPECT_TRUE(std::isfinite(e));
  }
}

TEST(Yds, ZeroWorkJobsIgnored) {
  const auto s = yds_schedule({{0, 0.0, 1.0, 0.0}, {1, 0.0, 1.0, 2.0}});
  for (const auto& seg : s.segments()) EXPECT_EQ(seg.task_id, 1);
}

TEST(YdsEnergy, MatchesHandComputation) {
  Schedule s;
  s.add(Segment{0, 0, 0.0, 2.0, 10.0});
  EXPECT_NEAR(yds_energy(s, 0.5, 3.0), 0.5 * 1000.0 * 2.0, 1e-9);
}

}  // namespace
}  // namespace sdem
