#!/usr/bin/env python3
"""Detect drift between committed BENCH_*.json artifacts and a fresh run.

For every BENCH_<experiment>.json in the repository root, rerun that
experiment through the bench runner with --stable at the committed seed
count, then compare the committed and regenerated documents after stripping
every host-dependent field:

  * the named keys: jobs, wall_seconds, solver_seconds_total,
    solver_seconds, counters, runtime, dists, timers — anywhere in the tree;
  * any key ending in `_ms` — measured wall times are data for experiments
    like table1, but they are the *subject* under measurement, not a
    deterministic metric, so they never gate.

What remains is the deterministic metric payload (energies, savings,
counts, parameters), which the frozen-oracle policy pins: any delta is a
silent behaviour change and fails the job. Experiments listed in
HOST_DEPENDENT carry only throughput measurements; for those the document
*structure* is compared (same keys, same row counts) but values are not.

A per-experiment delta table is written to $GITHUB_STEP_SUMMARY when set
(and always echoed to stdout). Exit status: 0 clean, 1 drift or a failed
rerun, 2 usage error.

Usage: check_bench_regression.py [--runner PATH] [--repo DIR] [--jobs N]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

STRIP_KEYS = {
    "jobs",
    "wall_seconds",
    "solver_seconds_total",
    "solver_seconds",
    "counters",
    "runtime",
    "dists",
    "timers",
}

# Experiments whose data sections are throughput/latency measurements of
# the host itself: structure is checked, values are not.
HOST_DEPENDENT = {"service_throughput"}

MAX_DELTAS_SHOWN = 10


def normalize(node):
    """Drop host-dependent keys/suffixes everywhere in the tree."""
    if isinstance(node, dict):
        return {
            k: normalize(v)
            for k, v in node.items()
            if k not in STRIP_KEYS and not k.endswith("_ms")
        }
    if isinstance(node, list):
        return [normalize(v) for v in node]
    return node


def skeleton(node):
    """Shape only: dict keys, list lengths, leaf types."""
    if isinstance(node, dict):
        return {k: skeleton(v) for k, v in sorted(node.items())}
    if isinstance(node, list):
        return [skeleton(v) for v in node]
    return type(node).__name__


def diff_leaves(old, new, path="", out=None):
    """Collect (path, old, new) for every differing leaf."""
    if out is None:
        out = []
    if isinstance(old, dict) and isinstance(new, dict):
        for k in sorted(set(old) | set(new)):
            if k not in old:
                out.append((f"{path}/{k}", "<absent>", "<added>"))
            elif k not in new:
                out.append((f"{path}/{k}", "<removed>", "<absent>"))
            else:
                diff_leaves(old[k], new[k], f"{path}/{k}", out)
    elif isinstance(old, list) and isinstance(new, list):
        if len(old) != len(new):
            out.append((path, f"len {len(old)}", f"len {len(new)}"))
        for i, (a, b) in enumerate(zip(old, new)):
            diff_leaves(a, b, f"{path}[{i}]", out)
    elif old != new:
        out.append((path, old, new))
    return out


def rerun(runner, name, seeds, jobs, out_path):
    cmd = [runner, "--filter", name, "--stable", "--quiet",
           "--jobs", str(jobs), "--out", out_path]
    if seeds is not None:
        cmd += ["--seeds", str(seeds)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        return f"runner exited {proc.returncode}: {proc.stderr.strip()[:500]}"
    if not os.path.exists(out_path):
        return "runner produced no output file"
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--runner", default="build/tools/sdem_bench_runner",
                    help="bench runner binary (default build/tools/...)")
    ap.add_argument("--repo", default=".", help="repository root")
    ap.add_argument("--jobs", type=int, default=2,
                    help="runner --jobs (any value must not change --stable "
                         "output; default 2)")
    args = ap.parse_args()

    committed = sorted(
        f for f in os.listdir(args.repo)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not committed:
        print("no committed BENCH_*.json artifacts found", file=sys.stderr)
        return 2
    if not os.path.exists(args.runner):
        print(f"runner not found: {args.runner}", file=sys.stderr)
        return 2

    rows = []
    failed = False
    with tempfile.TemporaryDirectory() as tmp:
        for fname in committed:
            name = fname[len("BENCH_"):-len(".json")]
            with open(os.path.join(args.repo, fname)) as f:
                old_doc = json.load(f)
            seeds = old_doc.get("seeds")
            out_path = os.path.join(tmp, fname)
            err = rerun(args.runner, name, seeds, args.jobs, out_path)
            if err:
                rows.append((name, "RERUN FAILED", [err]))
                failed = True
                continue
            with open(out_path) as f:
                new_doc = json.load(f)

            if name in HOST_DEPENDENT:
                if skeleton(normalize(old_doc)) == skeleton(normalize(new_doc)):
                    rows.append((name, "ok (structure only)", []))
                else:
                    deltas = diff_leaves(skeleton(normalize(old_doc)),
                                         skeleton(normalize(new_doc)))
                    rows.append((name, "STRUCTURE DRIFT",
                                 [p for p, *_ in deltas[:MAX_DELTAS_SHOWN]]))
                    failed = True
                continue

            old_n, new_n = normalize(old_doc), normalize(new_doc)
            if old_n == new_n:
                rows.append((name, "ok", []))
            else:
                deltas = diff_leaves(old_n, new_n)
                shown = [f"`{p}`: {a} -> {b}"
                         for p, a, b in deltas[:MAX_DELTAS_SHOWN]]
                if len(deltas) > MAX_DELTAS_SHOWN:
                    shown.append(f"... and {len(deltas) - MAX_DELTAS_SHOWN} more")
                rows.append((name, f"DRIFT ({len(deltas)} metrics)", shown))
                failed = True

    lines = ["# Bench regression check", "",
             "| experiment | status | deltas |",
             "|---|---|---|"]
    for name, status, details in rows:
        detail = "<br>".join(str(d) for d in details) if details else "—"
        lines.append(f"| {name} | {status} | {detail} |")
    report = "\n".join(lines)
    print(report)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(report + "\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
