// sdem_bench_runner — one command for the paper's evaluation (§8).
//
// Runs any subset of the registered experiments (bench/bench_registry.hpp)
// with the seed sweeps spread across a thread pool, prints the same tables
// the standalone bench binaries print, and writes one BENCH_<name>.json
// per experiment with full-precision per-seed metrics, per-seed solver
// timings, and the experiment wall-clock. docs/benchmarks.md documents the
// JSON schema and the regeneration recipes.
//
//   sdem_bench_runner --list
//   sdem_bench_runner                        # full sweep, all defaults
//   sdem_bench_runner --filter fig6a --seeds 8 --jobs 8
//   sdem_bench_runner --filter fig6a,fig6b --md   # markdown for EXPERIMENTS.md
//   sdem_bench_runner --filter table4 --out -     # JSON to stdout
//
// Determinism contract: per-seed results are bit-identical whatever --jobs
// is (seeds compute into private slots; folds happen in seed order), so
// two runs differ only in the recorded timings. `--out` strips timings
// with --stable, making the whole file byte-reproducible.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_registry.hpp"
#include "obs/obs.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace sdem;
using namespace sdem::bench;

constexpr int kSchemaVersion = 1;

int usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: sdem_bench_runner [options]\n"
      "  --list            list registered experiments and exit\n"
      "  --filter NAMES    comma-separated name substrings (default: all)\n"
      "  --seeds N         seeds per operating point (default: per-experiment,"
      " 10)\n"
      "  --jobs N          worker threads; 1 = serial (default: hardware)\n"
      "  --out PATH        JSON path for a single-experiment run; '-' for\n"
      "                    stdout; default BENCH_<name>.json per experiment\n"
      "  --stable          omit timings, job count, and observability\n"
      "                    sections from the JSON (byte-reproducible across\n"
      "                    runs, --jobs, and --tile)\n"
      "  --tile N          grid cells per pool task for grid-shaped sweeps;\n"
      "                    > 1 reuses one solver scratch across N adjacent\n"
      "                    (point, seed) cells (results are tile-invariant)\n"
      "  --timer-rollup    after each experiment, print the scoped-timer\n"
      "                    hierarchy as an indented inclusive/exclusive table\n"
      "  --trace PATH      record a chrome://tracing JSON of the whole run\n"
      "                    (timer spans + the governor power-state timeline)\n"
      "  --md              print tables as markdown (EXPERIMENTS.md format)\n"
      "  --quiet           suppress tables; JSON and summary only\n"
      "  --help            this message\n");
  return code;
}

/// Per-experiment JSON document (docs/benchmarks.md, schema_version 1).
Json make_document(const Experiment& e, const ExperimentResult& r, int seeds,
                   int jobs, double wall_seconds, bool stable) {
  Json doc = Json::object();
  doc.set("schema_version", kSchemaVersion);
  doc.set("generator", "sdem_bench_runner");
  doc.set("experiment", e.name);
  doc.set("paper_item", e.paper_item);
  doc.set("title", r.header_title);
  doc.set("description", e.description);
  doc.set("seeds", seeds);
  // --stable keeps only fields that cannot differ between reruns of the
  // same sweep: the job count and the timings vary, the data must not.
  if (!stable) {
    doc.set("jobs", jobs);
    doc.set("wall_seconds", wall_seconds);
    doc.set("solver_seconds_total", r.solver_seconds_total);
  }
  // --stable also drops the per-seed "counters" attribution: the values
  // are deterministic, but the key is additive schema and the stable bytes
  // must match pre-attribution goldens.
  doc.set("data", stable ? r.data.without_key("solver_seconds")
                               .without_key("counters")
                         : r.data);
  // Observability sections (docs/observability.md): "counters" holds the
  // deterministic domain (identical values at any --jobs), "runtime" the
  // scheduling/clock-dependent one. Strictly additive, and omitted under
  // --stable so golden byte comparisons predate-obs stay valid.
  if (!stable && sdem::obs::compiled()) {
    const sdem::obs::Snapshot snap = sdem::obs::Registry::instance().snapshot();
    doc.set("counters", snap.counters_json());
    doc.set("runtime", snap.runtime_json());
  }
  return doc;
}

/// --timer-rollup: the scoped-timer hierarchy of one experiment's run,
/// rebuilt from the parent→child edge cells every closing ScopedTimer
/// records (obs::kTimerEdgeSep). Parenthood is per-thread: a pool worker's
/// timers nest under "thread_pool/task", not under the experiment scope on
/// the main thread. A timer reachable from several parents is placed under
/// the parent that accounts for most of its time; count/incl/excl columns
/// are whole-run totals (incl = the timer's own cell, excl = incl minus
/// every child edge's time, i.e. time spent outside any nested timer).
void print_timer_rollup(const obs::Snapshot& snap) {
  std::map<std::string, obs::TimerCell> flat;
  // parent -> (child, edge cell), and child -> dominant parent.
  std::map<std::string, std::vector<std::pair<std::string, obs::TimerCell>>>
      kids;
  std::map<std::string, std::pair<std::string, std::uint64_t>> parent_of;
  for (const auto& [name, cell] : snap.timers) {
    const std::size_t sep = name.find(obs::kTimerEdgeSep);
    if (sep == std::string::npos) {
      flat[name] = cell;
      continue;
    }
    const std::string parent = name.substr(0, sep);
    const std::string child = name.substr(sep + 1);
    kids[parent].emplace_back(child, cell);
    auto it = parent_of.find(child);
    if (it == parent_of.end() || cell.total_ns > it->second.second)
      parent_of[child] = {parent, cell.total_ns};
  }
  if (flat.empty()) {
    std::printf("timer rollup: no scoped timers recorded\n\n");
    return;
  }

  std::printf("timer rollup (whole-run totals; excl = incl - nested):\n");
  std::printf("  %-44s %10s %12s %12s\n", "timer", "count", "incl ms",
              "excl ms");
  const std::function<void(const std::string&, int)> emit =
      [&](const std::string& name, int depth) {
        const obs::TimerCell& c = flat[name];
        std::uint64_t nested_ns = 0;
        std::vector<std::pair<std::uint64_t, std::string>> here;
        if (const auto ki = kids.find(name); ki != kids.end()) {
          for (const auto& [child, edge] : ki->second) {
            nested_ns += edge.total_ns;
            // Recurse only where this node is the dominant parent, so the
            // printout stays a tree even when the timer graph is not.
            if (parent_of[child].first == name)
              here.emplace_back(edge.total_ns, child);
          }
        }
        const double incl = static_cast<double>(c.total_ns) * 1e-6;
        const double excl =
            static_cast<double>(c.total_ns - std::min(c.total_ns, nested_ns)) *
            1e-6;
        std::printf("  %*s%-*s %10llu %12.3f %12.3f\n", 2 * depth, "",
                    44 - 2 * depth, name.c_str(),
                    static_cast<unsigned long long>(c.count), incl, excl);
        std::sort(here.begin(), here.end(),
                  [](const auto& a, const auto& b) { return a.first > b.first; });
        for (const auto& [ns, child] : here) emit(child, depth + 1);
      };
  // Roots (timers that are nobody's child), busiest first.
  std::vector<std::pair<std::uint64_t, std::string>> roots;
  for (const auto& [name, cell] : flat) {
    if (parent_of.find(name) == parent_of.end())
      roots.emplace_back(cell.total_ns, name);
  }
  std::sort(roots.begin(), roots.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [ns, name] : roots) emit(name, 0);
  std::printf("\n");
}

void print_markdown(const ExperimentResult& r) {
  std::printf("## %s\n\n%s\n\n", r.header_title.c_str(),
              r.header_what.c_str());
  for (const Table& t : r.tables)
    std::printf("%s\n", t.to_markdown().c_str());
  for (const std::string& f : r.footers) std::printf("%s\n", f.c_str());
  if (!r.footers.empty()) std::printf("\n");
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string filter;
  std::string out_path;
  std::string trace_path;
  int seeds = 0;
  int jobs = ThreadPool::hardware_jobs();
  int tile = 1;
  bool list = false, md = false, quiet = false, stable = false;
  bool timer_rollup = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(usage(2));
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--filter") {
      filter = value("--filter");
    } else if (arg == "--seeds") {
      const char* v = value("--seeds");
      seeds = std::atoi(v);
      if (seeds <= 0) {
        std::fprintf(stderr, "--seeds needs a positive integer, got '%s'\n", v);
        return usage(2);
      }
    } else if (arg == "--jobs") {
      const char* v = value("--jobs");
      jobs = std::atoi(v);
      if (jobs <= 0) {
        std::fprintf(stderr, "--jobs needs a positive integer, got '%s'\n", v);
        return usage(2);
      }
    } else if (arg == "--tile") {
      const char* v = value("--tile");
      tile = std::atoi(v);
      if (tile <= 0) {
        std::fprintf(stderr, "--tile needs a positive integer, got '%s'\n", v);
        return usage(2);
      }
    } else if (arg == "--timer-rollup") {
      timer_rollup = true;
    } else if (arg == "--out") {
      out_path = value("--out");
    } else if (arg == "--trace") {
      trace_path = value("--trace");
    } else if (arg == "--stable") {
      stable = true;
    } else if (arg == "--md") {
      md = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(2);
    }
  }

  const std::vector<const Experiment*> selected = match_experiments(filter);
  if (selected.empty()) {
    std::fprintf(stderr, "no experiment matches --filter '%s' (try --list)\n",
                 filter.c_str());
    return 1;
  }
  if (list) {
    Table t({"name", "paper item", "seeds", "standalone binary",
             "description"});
    for (const Experiment* e : selected)
      t.add_row({e->name, e->paper_item, std::to_string(e->default_seeds),
                 e->binary, e->description});
    std::printf("%s", t.to_text().c_str());
    return 0;
  }
  if (!out_path.empty() && selected.size() != 1) {
    std::fprintf(stderr,
                 "--out needs exactly one experiment selected, got %zu\n",
                 selected.size());
    return 2;
  }

  // jobs == 1 keeps the serial reference path (no pool) — the execution the
  // parallel runs must match bit-for-bit.
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs);

  // Timer spans and the governor's power-state timeline (obs/timeline.hpp)
  // share one trace file: timeline events merge into trace::to_json, so a
  // --trace of governor_ladder shows per-gap decisions alongside timers.
  if (!trace_path.empty()) {
    obs::trace::start();
    obs::timeline::start();
  }

  double total_wall = 0.0;
  for (const Experiment* e : selected) {
    RunOptions opt;
    opt.seeds = seeds;
    opt.pool = pool.get();
    opt.tile = tile;
    // Fresh counters per experiment: the "counters" section of
    // BENCH_<name>.json covers exactly this experiment's work.
    obs::Registry::instance().reset();
    const auto t0 = std::chrono::steady_clock::now();
    // The experiment timer closes before the snapshot below so the rollup
    // sees its final count (an open timer's cell still reads zero).
    const ExperimentResult r = [&] {
      const obs::ScopedTimer exp_timer(e->name.c_str());
      return e->run(opt);
    }();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    total_wall += wall;

    if (!quiet) {
      if (md)
        print_markdown(r);
      else
        print_result(r);
    }
    if (timer_rollup && obs::compiled())
      print_timer_rollup(obs::Registry::instance().snapshot());

    const int used_seeds = seeds > 0 ? seeds : e->default_seeds;
    const Json doc =
        make_document(*e, r, used_seeds, jobs, wall, stable);
    const std::string bytes = doc.dump(2);
    if (out_path == "-") {
      std::fwrite(bytes.data(), 1, bytes.size(), stdout);
    } else {
      const std::string path =
          out_path.empty() ? "BENCH_" + e->name + ".json" : out_path;
      if (!write_file(path, bytes)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      std::fprintf(stderr, "%-8s %6.2fs wall  %6.2fs solver  -> %s\n",
                   e->name.c_str(), wall, r.solver_seconds_total,
                   path.c_str());
    }
  }
  if (!trace_path.empty()) {
    if (!obs::trace::write_file(trace_path)) {
      std::fprintf(stderr, "cannot write trace %s\n", trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace -> %s (open in chrome://tracing)\n",
                 trace_path.c_str());
  }
  std::fprintf(stderr, "%zu experiment(s), %d job(s), %.2fs total\n",
               selected.size(), jobs, total_wall);
  return 0;
}
