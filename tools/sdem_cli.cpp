// sdem_cli — command-line front end for the library.
//
//   sdem_cli gen synthetic  <n> <x_ms> <seed>         task CSV to stdout
//   sdem_cli gen dspstone   <n> <U> <seed>
//   sdem_cli gen common     <n> <seed>
//   sdem_cli solve <scheme>                < tasks.csv   offline solve:
//       scheme: cr-alpha0 | cr-alpha | cr-transition | agreeable
//       prints energy, sleep time, a Gantt chart and the schedule CSV
//   sdem_cli simulate <policy>             < tasks.csv   online run:
//       policy: sdem-on | mbkp | race | stretch | critical
//   sdem_cli compare                       < tasks.csv   SDEM-ON vs MBKP(S)
//   sdem_cli selftest                                    end-to-end smoke
//
// All runs use the paper-default system configuration (8 A57-like cores,
// 4 W DRAM, 40 ms break-even).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/agreeable.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/governor.hpp"
#include "core/common_release_alpha.hpp"
#include "core/common_release_alpha0.hpp"
#include "core/online_sdem.hpp"
#include "core/transition.hpp"
#include "baseline/mbkp.hpp"
#include "baseline/simple_policies.hpp"
#include "sched/energy.hpp"
#include "sched/svg.hpp"
#include "sched/trace_io.hpp"
#include "sched/validate.hpp"
#include "sim/metrics.hpp"
#include "workload/dspstone.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sdem;

SystemConfig default_cfg() { return SystemConfig::paper_default(); }

std::string read_stdin() {
  std::ostringstream os;
  os << std::cin.rdbuf();
  return os.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: sdem_cli gen {synthetic|dspstone|common} ... |\n"
               "       sdem_cli solve {cr-alpha0|cr-alpha|cr-transition|"
               "agreeable} < tasks.csv |\n"
               "       sdem_cli simulate {sdem-on|mbkp|race|stretch|critical}"
               " < tasks.csv |\n"
               "       sdem_cli compare < tasks.csv | sdem_cli selftest\n"
               "  --trace PATH   (any command) record a chrome://tracing "
               "JSON\n"
               "  --power-trace PATH  (simulate) export the governor's\n"
               "                 power-state timeline — per-gap decisions,\n"
               "                 memory sleep-state residency and CPU speed\n"
               "                 counter tracks — as chrome://tracing JSON\n");
  return 2;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string kind = argv[0];
  if (kind == "synthetic" && argc >= 4) {
    SyntheticParams p;
    p.num_tasks = std::atoi(argv[1]);
    p.max_interarrival = std::atof(argv[2]) / 1000.0;
    std::fputs(task_set_to_csv(make_synthetic(p, std::atoll(argv[3]))).c_str(),
               stdout);
    return 0;
  }
  if (kind == "dspstone" && argc >= 4) {
    DspstoneParams p;
    p.num_tasks = std::atoi(argv[1]);
    p.utilization_u = std::atof(argv[2]);
    std::fputs(task_set_to_csv(make_dspstone(p, std::atoll(argv[3]))).c_str(),
               stdout);
    return 0;
  }
  if (kind == "common" && argc >= 3) {
    std::fputs(task_set_to_csv(
                   make_common_release(std::atoi(argv[1]), 0.0,
                                       std::atoll(argv[2])))
                   .c_str(),
               stdout);
    return 0;
  }
  return usage();
}

int report_offline(const OfflineResult& res, const TaskSet& tasks,
                   const SystemConfig& cfg) {
  if (!res.feasible) {
    std::fprintf(stderr, "infeasible task set\n");
    return 1;
  }
  const auto v = validate_schedule(res.schedule, tasks, cfg);
  std::printf("energy        %.6f J\n", res.energy);
  std::printf("memory sleep  %.3f ms\n", res.sleep_time * 1e3);
  std::printf("feasible      %s\n", v.ok ? "yes" : v.error.c_str());
  std::printf("\n%s\n", render_gantt(res.schedule).c_str());
  std::fputs(schedule_to_csv(res.schedule).c_str(), stdout);
  return v.ok ? 0 : 1;
}

int cmd_solve(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string scheme = argv[0];
  const TaskSet tasks = task_set_from_csv(read_stdin());
  auto cfg = default_cfg();
  cfg.num_cores = 0;
  cfg.core.s_min = 0.0;  // offline theory: continuous below s_up
  if (scheme == "cr-alpha0") {
    auto c = cfg;
    c.core.alpha = 0.0;
    c.memory.xi_m = 0.0;
    return report_offline(solve_common_release_alpha0(tasks, c), tasks, c);
  }
  if (scheme == "cr-alpha") {
    auto c = cfg;
    c.memory.xi_m = 0.0;
    return report_offline(solve_common_release_alpha(tasks, c), tasks, c);
  }
  if (scheme == "cr-transition") {
    return report_offline(solve_common_release_transition(tasks, cfg), tasks,
                          cfg);
  }
  if (scheme == "agreeable") {
    return report_offline(solve_agreeable(tasks, cfg), tasks, cfg);
  }
  return usage();
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string which = argv[0];
  const TaskSet tasks = task_set_from_csv(read_stdin());
  const auto cfg = default_cfg();

  SdemOnPolicy sdem_on;
  MbkpPolicy mbkp;
  RaceToIdlePolicy race;
  StretchPolicy stretch;
  CriticalSpeedPolicy critical;
  OnlinePolicy* pol = nullptr;
  if (which == "sdem-on") pol = &sdem_on;
  else if (which == "mbkp") pol = &mbkp;
  else if (which == "race") pol = &race;
  else if (which == "stretch") pol = &stretch;
  else if (which == "critical") pol = &critical;
  else return usage();

  const SimResult sim = simulate(tasks, cfg, *pol);
  const auto ev = evaluate_policy(
      sim, cfg,
      which == "mbkp" ? SleepDiscipline::kNever : SleepDiscipline::kOptimal,
      pol->name());
#if SDEM_OBS
  if (obs::timeline::enabled()) {
    // --power-trace: an extra, output-silent accounting pass under the
    // live idle governor journals every gap decision (predicted vs actual
    // idle, chosen rung, outcome). The report printed below comes from
    // `ev` above and stays byte-identical with tracing on or off.
    const std::string label = pol->name();
    IdleGovernor gov;
    EnergyOptions eopt;
    eopt.core_gaps = SleepDiscipline::kOptimal;
    eopt.memory_gaps = SleepDiscipline::kGovernor;
    eopt.horizon_lo = sim.horizon_lo;
    eopt.horizon_hi = sim.horizon_hi;
    eopt.governor = &gov;
    eopt.timeline_island = 0;
    eopt.timeline_label = label.c_str();
    (void)compute_energy(sim.schedule, cfg, eopt);
    // CPU speed counter tracks from the executed schedule: one track per
    // core, stepping to the segment's speed at start and 0 at end.
    std::vector<Segment> segs = sim.schedule.segments();
    std::sort(segs.begin(), segs.end(), [](const Segment& a, const Segment& b) {
      if (a.core != b.core) return a.core < b.core;
      if (a.start != b.start) return a.start < b.start;
      return a.end < b.end;
    });
    for (const Segment& s : segs) {
      const std::string track = "cpu/core" + std::to_string(s.core) + "/speed";
      obs::timeline::counter_sample(track, s.start, s.speed);
      obs::timeline::counter_sample(track, s.end, 0.0);
    }
  }
#endif
  std::printf("policy        %s\n", ev.policy.c_str());
  std::printf("system energy %.6f J\n", ev.energy.system_total());
  std::printf("memory energy %.6f J\n", ev.energy.memory_total());
  std::printf("memory sleep  %.3f s\n", ev.memory_sleep_time);
  std::printf("misses        %d\n", ev.deadline_misses);
  std::printf("\n%s\n", render_gantt(sim.schedule).c_str());
  std::fputs(schedule_to_csv(sim.schedule).c_str(), stdout);
  return ev.unfinished == 0 ? 0 : 1;
}

int cmd_svg(int argc, char** argv) {
  // sdem_cli svg [policy] < tasks.csv > schedule.svg
  const std::string which = argc >= 1 ? argv[0] : "sdem-on";
  const TaskSet tasks = task_set_from_csv(read_stdin());
  const auto cfg = default_cfg();
  SdemOnPolicy sdem_on;
  MbkpPolicy mbkp;
  OnlinePolicy* pol = which == "mbkp" ? static_cast<OnlinePolicy*>(&mbkp)
                                      : static_cast<OnlinePolicy*>(&sdem_on);
  const SimResult sim = simulate(tasks, cfg, *pol);
  SvgOptions opts;
  opts.title = pol->name() + " schedule, " + std::to_string(tasks.size()) +
               " tasks";
  std::fputs(render_svg(sim.schedule, opts).c_str(), stdout);
  return 0;
}

int cmd_compare() {
  const TaskSet tasks = task_set_from_csv(read_stdin());
  const auto cmp = run_comparison(tasks, default_cfg());
  std::printf("%-10s %14s %14s %10s %8s\n", "policy", "system (J)",
              "memory (J)", "sleep (s)", "misses");
  for (const auto* ev : {&cmp.mbkp, &cmp.mbkps, &cmp.sdem}) {
    std::printf("%-10s %14.6f %14.6f %10.3f %8d\n", ev->policy.c_str(),
                ev->energy.system_total(), ev->energy.memory_total(),
                ev->memory_sleep_time, ev->deadline_misses);
  }
  std::printf("saving vs MBKP: MBKPS %.2f%%  SDEM-ON %.2f%%\n",
              100.0 * cmp.system_saving_mbkps(),
              100.0 * cmp.system_saving_sdem());
  return 0;
}

int cmd_selftest() {
  // gen -> solve -> simulate -> compare, all in-process.
  SyntheticParams p;
  p.num_tasks = 40;
  p.max_interarrival = 0.300;
  const TaskSet tasks = make_synthetic(p, 7);
  const auto csv = task_set_to_csv(tasks);
  const TaskSet back = task_set_from_csv(csv);
  if (back.size() != tasks.size()) return 1;

  auto cfg = default_cfg();
  cfg.core.s_min = 0.0;
  cfg.memory.xi_m = 0.0;
  const TaskSet cr = make_common_release(6, 0.0, 3);
  const auto off = solve_common_release_alpha(cr, cfg);
  if (!off.feasible) return 1;
  if (!validate_schedule(off.schedule, cr, cfg).ok) return 1;

  const auto cmp = run_comparison(tasks, default_cfg());
  if (cmp.sdem.deadline_misses != 0) return 1;
  if (cmp.sdem.energy.system_total() >
      cmp.mbkp.energy.system_total() * 1.001) {
    return 1;
  }
  std::printf("selftest ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Pre-scan for the global --trace / --power-trace flags (valid on any
  // command) so the per-command argv parsing below stays untouched.
  std::string trace_path;
  std::string power_trace_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--power-trace") == 0 && i + 1 < argc) {
      power_trace_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (!trace_path.empty()) sdem::obs::trace::start();
  if (!power_trace_path.empty()) sdem::obs::timeline::start();

  int rc = 2;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") rc = cmd_gen(argc - 2, argv + 2);
    else if (cmd == "solve") rc = cmd_solve(argc - 2, argv + 2);
    else if (cmd == "simulate") rc = cmd_simulate(argc - 2, argv + 2);
    else if (cmd == "svg") rc = cmd_svg(argc - 2, argv + 2);
    else if (cmd == "compare") rc = cmd_compare();
    else if (cmd == "selftest") rc = cmd_selftest();
    else rc = usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!trace_path.empty()) {
    if (!sdem::obs::trace::write_file(trace_path)) {
      std::fprintf(stderr, "cannot write trace %s\n", trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace -> %s (open in chrome://tracing)\n",
                 trace_path.c_str());
  }
  if (!power_trace_path.empty()) {
    if (!sdem::obs::timeline::write_file(power_trace_path)) {
      std::fprintf(stderr, "cannot write power trace %s\n",
                   power_trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "power trace -> %s (open in chrome://tracing)\n",
                 power_trace_path.c_str());
  }
  return rc;
}
