// sdem_fuzz — seeded differential fuzzer over the SDEM solver stack.
//
//   sdem_fuzz [--cases N] [--budget-seconds S] [--seed S]
//             [--model all|common_release|agreeable|general|sleep_ladder]
//             [--out-dir DIR] [--jobs N] [--no-shrink] [--no-reference]
//             [--max-failures N] [--quiet]
//   sdem_fuzz --replay FILE.repro.json [FILE2 ...]
//   sdem_fuzz --replay-dir DIR
//
// Generates random task sets per model class, runs every applicable solver
// pair against its oracle, and checks the invariant library in
// src/testing/invariants.hpp. Failures shrink to minimal reproducers and
// are written as self-contained .repro.json files (plus a ready-to-paste
// regression test body on stdout).
//
// Exit codes: 0 clean, 1 invariant violations found, 2 usage error.
//
// CI wiring (see docs/testing.md): the ASan/UBSan job runs a 500-case
// smoke, the nightly job runs --budget-seconds 600 per model class and
// uploads any repro corpus as an artifact; tests/corpus/ is replayed by
// ctest on every build.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "support/thread_pool.hpp"
#include "testing/fuzz_driver.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --cases N           max cases per model class (default 1000)\n"
      << "  --budget-seconds S  wall-clock budget across the run\n"
      << "  --seed S            master seed (default 1)\n"
      << "  --model M           all|common_release|agreeable|general|\n"
      << "                      sleep_ladder\n"
      << "                      (repeatable; default all)\n"
      << "  --out-dir DIR       write .repro.json files here\n"
      << "  --jobs N            threads for the parallel-replay check\n"
      << "                      (default 2; 0 disables the check)\n"
      << "  --max-failures N    stop after N distinct failures (default 5)\n"
      << "  --no-shrink         keep failing cases as generated\n"
      << "  --no-reference      skip the slow grid-reference oracles\n"
      << "  --quiet             no per-failure regression-test dump\n"
      << "  --replay FILE...    replay repro files instead of fuzzing\n"
      << "  --replay-dir DIR    replay every *.repro.json in DIR\n"
      << "  --trace PATH        record a chrome://tracing JSON of the run\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using sdem::testing::FuzzOptions;
  using sdem::testing::ModelClass;

  FuzzOptions opts;
  opts.models.clear();
  int jobs = 2;
  std::vector<std::string> replay_files;
  std::string replay_dir;
  std::string trace_path;

  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << argv[i] << " requires a value\n";
      std::exit(usage(argv[0]));
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cases") {
      opts.cases = std::atol(need_value(i));
    } else if (arg == "--budget-seconds") {
      opts.budget_seconds = std::atof(need_value(i));
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (arg == "--model") {
      const std::string m = need_value(i);
      if (m == "all") {
        opts.models = {ModelClass::kCommonRelease, ModelClass::kAgreeable,
                       ModelClass::kGeneral, ModelClass::kSleepLadder};
      } else {
        try {
          opts.models.push_back(sdem::testing::model_class_from_string(m));
        } catch (const std::exception& e) {
          std::cerr << e.what() << "\n";
          return usage(argv[0]);
        }
      }
    } else if (arg == "--out-dir") {
      opts.out_dir = need_value(i);
    } else if (arg == "--jobs") {
      jobs = std::atoi(need_value(i));
    } else if (arg == "--max-failures") {
      opts.max_failures = std::atoi(need_value(i));
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--no-reference") {
      opts.check.run_reference = false;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--replay") {
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        replay_files.push_back(argv[++i]);
      }
      if (replay_files.empty()) {
        std::cerr << "--replay requires at least one file\n";
        return usage(argv[0]);
      }
    } else if (arg == "--replay-dir") {
      replay_dir = need_value(i);
    } else if (arg == "--trace") {
      trace_path = need_value(i);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (opts.models.empty()) {
    opts.models = {ModelClass::kCommonRelease, ModelClass::kAgreeable,
                   ModelClass::kGeneral, ModelClass::kSleepLadder};
  }

  if (!trace_path.empty()) sdem::obs::trace::start();
  const auto finish = [&](int rc) {
    if (trace_path.empty()) return rc;
    if (!sdem::obs::trace::write_file(trace_path)) {
      std::cerr << "cannot write trace " << trace_path << "\n";
      return rc == 0 ? 1 : rc;
    }
    std::cerr << "trace -> " << trace_path
              << " (open in chrome://tracing)\n";
    return rc;
  };

  std::unique_ptr<sdem::ThreadPool> pool;
  if (jobs > 0) {
    pool = std::make_unique<sdem::ThreadPool>(jobs);
    opts.check.pool = pool.get();
  }

  // Replay mode: no generation, just re-check the given cases.
  if (!replay_files.empty() || !replay_dir.empty()) {
    int failing = 0;
    for (const auto& f : replay_files) {
      if (!sdem::testing::replay_repro(f, opts.check, std::cout)) ++failing;
    }
    if (!replay_dir.empty()) {
      failing += sdem::testing::replay_corpus(replay_dir, opts.check,
                                              std::cout);
    }
    return finish(failing == 0 ? 0 : 1);
  }

  const auto report = sdem::testing::run_fuzz(opts, std::cout);
  std::cout << "fuzz: " << report.cases_run << " cases ("
            << report.cases_per_model[0] << " common_release, "
            << report.cases_per_model[1] << " agreeable, "
            << report.cases_per_model[2] << " general, "
            << report.cases_per_model[3] << " sleep_ladder) in "
            << report.seconds << "s"
            << (report.budget_exhausted ? " [budget]" : "") << ", "
            << report.failures.size() << " failure(s)\n";
  return finish(report.clean() ? 0 : 1);
}
