// sdem_service — long-running online scheduling daemon (docs/service.md).
//
// Ingests task arrivals as newline-delimited JSON over stdin/stdout and,
// with --port, over a localhost TCP socket, answers admission + schedule
// queries online, and shards independent memory islands across the thread
// pool. Three modes:
//
//   sdem_service [--policy P] [--shards N] [--port PORT]    live daemon
//   sdem_service --replay file.ndjson [--verify-batch]      deterministic
//       batch replay: prints per-island schedules byte-identical to the
//       batch simulator on the same stream (any --shards value)
//   sdem_service --gen-stream N [--islands K] [--seed S]    emit a canned
//       arrival stream (the CI smoke input) to stdout
//
// Responses are emitted in request order per connection (a sequence-number
// reorder buffer; shards complete out of order). STATS is a service-wide
// barrier: it drains every shard, then reports per-shard throughput and
// p50/p99 replan latency from the obs runtime domain.
#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "model/task.hpp"
#include "obs/trace.hpp"
#include "sched/trace_io.hpp"
#include "service/service.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sdem;
using namespace sdem::service;

int usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: sdem_service [options]\n"
      "  --policy NAME     sdem-on|sdem-on-eager|mbkp|race|stretch|critical\n"
      "                    (default sdem-on)\n"
      "  --shards N        worker shards / pool threads (default 1)\n"
      "  --port PORT       also serve ndjson on 127.0.0.1:PORT (0 = pick a\n"
      "                    free port; the chosen port is printed to stderr)\n"
      "  --replay FILE     replay an ndjson arrival stream deterministically\n"
      "                    and print per-island schedules to stdout\n"
      "  --verify-batch    with --replay: re-run the batch simulator per\n"
      "                    island and fail unless byte-identical\n"
      "  --gen-stream N    emit an N-arrival SUBMIT stream to stdout\n"
      "  --islands K       islands for --gen-stream (default 4)\n"
      "  --seed S          seed for --gen-stream (default 1)\n"
      "  --trace PATH      record a chrome://tracing JSON of the run\n"
      "  --help            this message\n");
  return code;
}

struct Options {
  std::string policy = "sdem-on";
  int shards = 1;
  int port = -1;  ///< -1 = no TCP
  std::string replay;
  bool verify_batch = false;
  long gen_stream = 0;
  int islands = 4;
  std::uint64_t seed = 1;
  std::string trace;
};

/// Sequence-ordered response writer. Shards complete out of order; output
/// must follow request order per connection. Global seq order implies
/// per-connection order, so one buffer suffices. conn -1 writes to stdout.
class OrderedWriter {
 public:
  void deposit(std::uint64_t seq, int conn, std::string line) {
    std::lock_guard<std::mutex> lock(mu_);
    held_.emplace(seq, std::make_pair(conn, std::move(line)));
    while (!held_.empty() && held_.begin()->first == next_) {
      write_line(held_.begin()->second.first, held_.begin()->second.second);
      held_.erase(held_.begin());
      ++next_;
    }
  }

 private:
  static void write_line(int conn, const std::string& line) {
    std::string out = line;
    out.push_back('\n');
    if (conn < 0) {
      std::fwrite(out.data(), 1, out.size(), stdout);
      std::fflush(stdout);
      return;
    }
    // Best effort: a disconnected client just loses its responses
    // (SIGPIPE is ignored; EPIPE is expected).
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(conn, out.data() + off, out.size() - off);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  std::mutex mu_;
  std::uint64_t next_ = 0;
  std::map<std::uint64_t, std::pair<int, std::string>> held_;
};

int run_gen_stream(const Options& o) {
  if (o.gen_stream <= 0 || o.islands <= 0) {
    std::fprintf(stderr, "--gen-stream and --islands need positive values\n");
    return 2;
  }
  // Per-island synthetic streams (paper §8.1.2 generator), merged into one
  // globally release-sorted ndjson — per island the order is non-decreasing
  // by construction, which is all the replay contract needs.
  struct Line {
    double release;
    int island;
    Task task;
  };
  std::vector<Line> lines;
  lines.reserve(static_cast<std::size_t>(o.gen_stream));
  const long per = o.gen_stream / o.islands;
  const long extra = o.gen_stream % o.islands;
  for (int isl = 0; isl < o.islands; ++isl) {
    SyntheticParams p;
    p.num_tasks = static_cast<int>(per + (isl < extra ? 1 : 0));
    p.max_interarrival = 0.050;
    if (p.num_tasks == 0) continue;
    const TaskSet ts = make_synthetic(p, o.seed * 1000003 + isl);
    for (const Task& t : ts.tasks()) lines.push_back({t.release, isl, t});
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) {
                     if (a.release != b.release) return a.release < b.release;
                     if (a.island != b.island) return a.island < b.island;
                     return a.task.id < b.task.id;
                   });
  std::string out;
  for (const Line& l : lines) {
    Json task = Json::object();
    task.set("id", l.task.id);
    task.set("release", l.task.release);
    task.set("deadline", l.task.deadline);
    task.set("work", l.task.work);
    Json req = Json::object();
    req.set("op", "SUBMIT");
    req.set("island", l.island);
    req.set("task", std::move(task));
    out += req.dump(0);
    out.push_back('\n');
  }
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}

/// Per-island replay report: a stable header line plus the schedule CSV,
/// ascending island id. This is the byte surface the determinism and
/// verify contracts are defined over.
std::string island_report(const Service::IslandResult& isl) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "island %d policy=%s tasks=%llu replans=%d misses=%d "
                "unfinished=%d\n",
                isl.island, isl.policy.c_str(),
                static_cast<unsigned long long>(isl.submits),
                isl.result.replans, isl.result.deadline_misses,
                isl.result.unfinished);
  return std::string(head) + schedule_to_csv(isl.result.schedule);
}

int run_replay(const Options& o) {
  std::ifstream in(o.replay);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", o.replay.c_str());
    return 1;
  }
  ServiceOptions sopt;
  sopt.policy = o.policy;
  sopt.shards = o.shards;
  sopt.eager = false;  // batch same-instant arrivals exactly like simulate()
  std::unique_ptr<ThreadPool> pool;
  if (o.shards > 1) pool = std::make_unique<ThreadPool>(o.shards);

  std::mutex err_mu;
  std::vector<std::string> errors;
  Service svc(sopt, pool.get(), [&](const Request& r, Json resp) {
    const Json* ok = resp.find("ok");
    if (ok != nullptr && ok->is_bool() && !ok->as_bool()) {
      std::lock_guard<std::mutex> lock(err_mu);
      errors.push_back("seq " + std::to_string(r.seq) + ": " +
                       resp.at("error").as_string());
    }
  });

  std::string line;
  std::uint64_t seq = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Parsed p = parse_request(line);
    if (!p.ok) {
      std::fprintf(stderr, "replay line %llu: %s\n",
                   static_cast<unsigned long long>(seq + 1), p.error.c_str());
      return 1;
    }
    if (p.request.op != Op::kSubmit) {
      std::fprintf(stderr, "replay line %llu: only SUBMIT is replayable\n",
                   static_cast<unsigned long long>(seq + 1));
      return 1;
    }
    p.request.seq = seq++;
    svc.route(std::move(p.request));
  }
  const std::vector<Service::IslandResult> islands = svc.finalize_all();
  if (!errors.empty()) {
    for (const std::string& e : errors) {
      std::fprintf(stderr, "replay error: %s\n", e.c_str());
    }
    return 1;
  }
  std::string report;
  for (const auto& isl : islands) report += island_report(isl);
  std::fwrite(report.data(), 1, report.size(), stdout);
  std::fprintf(stderr, "replay: %zu island(s), %llu task(s), shards=%d\n",
               islands.size(), static_cast<unsigned long long>(seq),
               o.shards);

  if (!o.verify_batch) return 0;
  // Re-run every island through the batch simulator on the same arrivals
  // and require the identical byte surface (schedule CSV + counters).
  int rc = 0;
  for (const auto& isl : islands) {
    const auto policy = make_policy(o.policy);
    const SimResult batch =
        simulate(TaskSet(isl.tasks), sopt.cfg, *policy);
    Service::IslandResult want;
    want.island = isl.island;
    want.policy = isl.policy;
    want.submits = isl.submits;
    want.result = batch;
    const std::string got = island_report(isl);
    const std::string expect = island_report(want);
    if (got != expect || isl.result.horizon_lo != batch.horizon_lo ||
        isl.result.horizon_hi != batch.horizon_hi) {
      std::fprintf(stderr,
                   "verify FAILED: island %d differs from batch simulate() "
                   "(replayed %zu bytes, batch %zu bytes)\n",
                   isl.island, got.size(), expect.size());
      rc = 1;
    }
  }
  if (rc == 0) {
    std::fprintf(stderr,
                 "verify: %zu island(s) byte-identical to batch simulate()\n",
                 islands.size());
  }
  return rc;
}

/// Live daemon: poll() multiplexes stdin, the TCP listener and client
/// connections on one ingest thread (which is what makes the per-shard
/// rings single-producer).
class Daemon {
 public:
  Daemon(const Options& o) : opt_(o) {}

  int run() {
    ServiceOptions sopt;
    sopt.policy = opt_.policy;
    sopt.shards = opt_.shards;
    sopt.eager = true;
    if (opt_.shards > 1) pool_ = std::make_unique<ThreadPool>(opt_.shards);
    svc_ = std::make_unique<Service>(
        sopt, pool_.get(), [this](const Request& r, Json resp) {
          writer_.deposit(r.seq, r.conn, resp.dump(0));
        });

    if (opt_.port >= 0 && !open_listener()) return 1;
    bool stdin_open = true;

    while (!stop_) {
      std::vector<pollfd> fds;
      if (stdin_open) fds.push_back({0, POLLIN, 0});
      if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
      for (const auto& [fd, buf] : conns_) fds.push_back({fd, POLLIN, 0});
      if (fds.empty()) break;  // stdin closed, no TCP: nothing left to serve
      if (::poll(fds.data(), fds.size(), -1) < 0) {
        if (errno == EINTR) continue;
        std::perror("poll");
        return 1;
      }
      for (const pollfd& p : fds) {
        if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        if (p.fd == 0) {
          if (!read_chunk(0, &stdin_buf_)) {
            flush_partial(0, &stdin_buf_);
            stdin_open = false;
            // stdin EOF with no TCP surface: drain and exit cleanly.
            if (listen_fd_ < 0) stop_ = true;
          }
        } else if (p.fd == listen_fd_) {
          accept_client();
        } else {
          auto it = conns_.find(p.fd);
          if (it == conns_.end()) continue;
          if (!read_chunk(p.fd, &it->second)) {
            flush_partial(p.fd, &it->second);
            ::close(p.fd);
            conns_.erase(it);
          }
        }
        if (stop_) break;
      }
    }
    svc_->drain_all();
    for (const auto& [fd, buf] : conns_) ::close(fd);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    return 0;
  }

 private:
  bool open_listener() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      std::perror("socket");
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listen_fd_, 16) < 0) {
      std::perror("bind/listen");
      return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    std::fprintf(stderr, "listening on 127.0.0.1:%d\n",
                 ntohs(addr.sin_port));
    return true;
  }

  void accept_client() {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd >= 0) conns_.emplace(fd, std::string());
  }

  /// Read once from fd, dispatch complete lines. Returns false on EOF/error.
  bool read_chunk(int fd, std::string* buf) {
    char chunk[65536];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buf->append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf->find('\n', start);
      if (nl == std::string::npos) break;
      dispatch(buf->substr(start, nl - start), fd == 0 ? -1 : fd);
      start = nl + 1;
      if (stop_) break;
    }
    buf->erase(0, start);
    return true;
  }

  /// A final line without a trailing newline still counts at EOF.
  void flush_partial(int fd, std::string* buf) {
    if (!buf->empty() && !stop_) dispatch(*buf, fd == 0 ? -1 : fd);
    buf->clear();
  }

  void dispatch(const std::string& line, int conn) {
    if (line.empty()) return;
    const std::uint64_t seq = seq_++;
    Parsed p = parse_request(line);
    if (!p.ok) {
      writer_.deposit(seq, conn, error_response(seq, p.error).dump(0));
      return;
    }
    p.request.seq = seq;
    p.request.conn = conn;
    switch (p.request.op) {
      case Op::kSubmit:
      case Op::kQuery:
        svc_->route(std::move(p.request));
        break;
      case Op::kStats:
        // Barrier: drains every shard first, so all earlier responses have
        // already been deposited and seq order is preserved.
        writer_.deposit(seq, conn, svc_->stats(seq).dump(0));
        break;
      case Op::kShutdown: {
        svc_->drain_all();
        Json resp = ok_response(Op::kShutdown, seq);
        resp.set("requests", svc_->requests_processed());
        writer_.deposit(seq, conn, resp.dump(0));
        stop_ = true;
        break;
      }
    }
  }

  Options opt_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Service> svc_;
  OrderedWriter writer_;
  std::map<int, std::string> conns_;  ///< client fd -> partial line buffer
  std::string stdin_buf_;
  std::uint64_t seq_ = 0;
  int listen_fd_ = -1;
  bool stop_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(usage(2));
      }
      return argv[++i];
    };
    if (arg == "--policy") {
      o.policy = value("--policy");
    } else if (arg == "--shards") {
      o.shards = std::atoi(value("--shards"));
      if (o.shards < 1) {
        std::fprintf(stderr, "--shards needs a positive integer\n");
        return usage(2);
      }
    } else if (arg == "--port") {
      o.port = std::atoi(value("--port"));
    } else if (arg == "--replay") {
      o.replay = value("--replay");
    } else if (arg == "--verify-batch") {
      o.verify_batch = true;
    } else if (arg == "--gen-stream") {
      o.gen_stream = std::atol(value("--gen-stream"));
    } else if (arg == "--islands") {
      o.islands = std::atoi(value("--islands"));
    } else if (arg == "--seed") {
      o.seed = static_cast<std::uint64_t>(std::atoll(value("--seed")));
    } else if (arg == "--trace") {
      o.trace = value("--trace");
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(2);
    }
  }

  if (!o.trace.empty()) sdem::obs::trace::start();
  int rc = 1;
  try {
    if (o.gen_stream > 0) {
      rc = run_gen_stream(o);
    } else if (!o.replay.empty()) {
      rc = run_replay(o);
    } else {
      rc = Daemon(o).run();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!o.trace.empty()) {
    if (!sdem::obs::trace::write_file(o.trace)) {
      std::fprintf(stderr, "cannot write trace %s\n", o.trace.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace -> %s (open in chrome://tracing)\n",
                 o.trace.c_str());
  }
  return rc;
}
