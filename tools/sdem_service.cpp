// sdem_service — long-running online scheduling daemon (docs/service.md).
//
// Ingests task arrivals as newline-delimited JSON over stdin/stdout and,
// with --port, over a localhost TCP socket, answers admission + schedule
// queries online, and shards independent memory islands across the thread
// pool. Four modes:
//
//   sdem_service [--policy P] [--shards N] [--acceptors A] [--port PORT]
//       live daemon (src/service/daemon.hpp): pipelined ingest — raw lines
//       are routed by a peek and parsed on the shard workers
//   sdem_service --replay file.ndjson [--verify-batch]      deterministic
//       batch replay: prints per-island schedules byte-identical to the
//       batch simulator on the same stream (any --shards value)
//   sdem_service --gen-stream N [--islands K] [--seed S]    emit a canned
//       arrival stream (the CI smoke input) to stdout
//   sdem_service --load-gen N --connect PORT [--conns C]    drive a running
//       daemon over TCP and report end-to-end events/sec
//
// Responses are emitted in request order per connection (a per-connection
// reorder buffer; shards complete out of order). STATS/METRICS are
// service-wide barriers: they drain every shard, then report per-shard
// throughput and replan latency (cumulative in STATS, windowed Prometheus
// exposition in METRICS) from the obs runtime domain.
//
// SIGINT/SIGTERM stop the daemon cleanly (self-pipe → request_stop), so an
// interrupted --trace run still flushes a valid chrome://tracing JSON.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "model/task.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sched/trace_io.hpp"
#include "service/daemon.hpp"
#include "service/service.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sdem;
using namespace sdem::service;

int usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: sdem_service [options]\n"
      "  --policy NAME     sdem-on|sdem-on-eager|mbkp|race|stretch|critical\n"
      "                    (default sdem-on)\n"
      "  --shards N        worker shards / pool threads (default 1)\n"
      "  --acceptors N     ingest/poll threads for the live daemon\n"
      "                    (default 1; connections assigned round-robin)\n"
      "  --port PORT       also serve ndjson on 127.0.0.1:PORT (0 = pick a\n"
      "                    free port; the chosen port is printed to stderr)\n"
      "  --queue-capacity N  per (producer, shard) ring slots (default 1024)\n"
      "  --parse-on-ingest parse every line on the ingest thread instead of\n"
      "                    the shard workers (pre-pipelining baseline)\n"
      "  --replay FILE     replay an ndjson arrival stream deterministically\n"
      "                    and print per-island schedules to stdout\n"
      "  --verify-batch    with --replay: re-run the batch simulator per\n"
      "                    island and fail unless byte-identical\n"
      "  --gen-stream N    emit an N-arrival SUBMIT stream to stdout\n"
      "  --islands K       islands for --gen-stream/--load-gen (default 4)\n"
      "  --seed S          seed for --gen-stream/--load-gen (default 1)\n"
      "  --load-gen N      connect to a daemon and push N SUBMITs, timing\n"
      "                    end-to-end events/sec (needs --connect)\n"
      "  --connect PORT    daemon port for --load-gen\n"
      "  --conns C         concurrent load-gen connections (default 1)\n"
      "  --trace PATH      record a chrome://tracing JSON of the run\n"
      "  --metrics-interval S  daemon mode: write a Prometheus metrics\n"
      "                    snapshot every S seconds (needs --metrics-out)\n"
      "  --metrics-out PATH  snapshot file, truncated each tick so it\n"
      "                    always holds the latest exposition\n"
      "  --help            this message\n");
  return code;
}

struct Options {
  std::string policy = "sdem-on";
  int shards = 1;
  int acceptors = 1;
  int port = -1;  ///< -1 = no TCP
  std::size_t queue_capacity = 1024;
  bool parse_on_ingest = false;
  std::string replay;
  bool verify_batch = false;
  long gen_stream = 0;
  int islands = 4;
  std::uint64_t seed = 1;
  long load_gen = 0;
  int connect_port = -1;
  int conns = 1;
  std::string trace;
  double metrics_interval = 0.0;
  std::string metrics_out;
};

/// SIGINT/SIGTERM → one byte down a self-pipe; a watcher thread turns it
/// into Daemon::request_stop(). The handler itself only calls write()
/// (async-signal-safe) — the daemon then unwinds normally, so end-of-run
/// work (the --trace flush in main) still happens.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_terminate_signal(int) {
  const char b = 1;
  ssize_t n;
  do {
    n = ::write(g_signal_pipe[1], &b, 1);
  } while (n < 0 && errno == EINTR);
}

/// The canned per-island synthetic streams (paper §8.1.2 generator), merged
/// into one globally release-sorted line list — per island the order is
/// non-decreasing by construction, which is all the replay contract needs.
struct StreamLine {
  double release;
  int island;
  std::string text;  ///< one SUBMIT request, no trailing newline
};

std::vector<StreamLine> make_stream_lines(long n, int islands,
                                          std::uint64_t seed) {
  struct Raw {
    double release;
    int island;
    Task task;
  };
  std::vector<Raw> raws;
  raws.reserve(static_cast<std::size_t>(n));
  const long per = n / islands;
  const long extra = n % islands;
  for (int isl = 0; isl < islands; ++isl) {
    SyntheticParams p;
    p.num_tasks = static_cast<int>(per + (isl < extra ? 1 : 0));
    p.max_interarrival = 0.050;
    if (p.num_tasks == 0) continue;
    const TaskSet ts = make_synthetic(p, seed * 1000003 + isl);
    for (const Task& t : ts.tasks()) raws.push_back({t.release, isl, t});
  }
  std::stable_sort(raws.begin(), raws.end(), [](const Raw& a, const Raw& b) {
    if (a.release != b.release) return a.release < b.release;
    if (a.island != b.island) return a.island < b.island;
    return a.task.id < b.task.id;
  });
  std::vector<StreamLine> lines;
  lines.reserve(raws.size());
  for (const Raw& r : raws) {
    Json task = Json::object();
    task.set("id", r.task.id);
    task.set("release", r.task.release);
    task.set("deadline", r.task.deadline);
    task.set("work", r.task.work);
    Json req = Json::object();
    req.set("op", "SUBMIT");
    req.set("island", r.island);
    req.set("task", std::move(task));
    lines.push_back({r.release, r.island, req.dump(0)});
  }
  return lines;
}

int run_gen_stream(const Options& o) {
  if (o.gen_stream <= 0 || o.islands <= 0) {
    std::fprintf(stderr, "--gen-stream and --islands need positive values\n");
    return 2;
  }
  std::string out;
  for (const StreamLine& l :
       make_stream_lines(o.gen_stream, o.islands, o.seed)) {
    out += l.text;
    out.push_back('\n');
  }
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}

/// Per-island replay report: a stable header line plus the schedule CSV,
/// ascending island id. This is the byte surface the determinism and
/// verify contracts are defined over.
std::string island_report(const Service::IslandResult& isl) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "island %d policy=%s tasks=%llu replans=%d misses=%d "
                "unfinished=%d\n",
                isl.island, isl.policy.c_str(),
                static_cast<unsigned long long>(isl.submits),
                isl.result.replans, isl.result.deadline_misses,
                isl.result.unfinished);
  return std::string(head) + schedule_to_csv(isl.result.schedule);
}

int run_replay(const Options& o) {
  std::ifstream in(o.replay);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", o.replay.c_str());
    return 1;
  }
  ServiceOptions sopt;
  sopt.policy = o.policy;
  sopt.shards = o.shards;
  sopt.eager = false;  // batch same-instant arrivals exactly like simulate()
  sopt.queue_capacity = o.queue_capacity;
  std::unique_ptr<ThreadPool> pool;
  if (o.shards > 1) pool = std::make_unique<ThreadPool>(o.shards);

  std::mutex err_mu;
  std::vector<std::pair<std::uint64_t, std::string>> errors;
  Service svc(sopt, pool.get(), [&](const Request& r, Json resp) {
    const Json* ok = resp.find("ok");
    if (ok != nullptr && ok->is_bool() && !ok->as_bool()) {
      std::lock_guard<std::mutex> lock(err_mu);
      errors.emplace_back(r.seq, resp.at("error").as_string());
    }
  });

  std::string line;
  std::uint64_t seq = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!o.parse_on_ingest) {
      // Pipelined path (the default): route by peek, parse on the shard.
      // Parse failures surface through the error callback, sequence-tagged.
      const Peeked peek = peek_request(line);
      if (peek.routable() && peek.op == Op::kSubmit) {
        const std::uint64_t s = seq++;
        svc.route_raw(peek.island, peek.op, std::move(line), s, 0, s);
        continue;
      }
    }
    // Baseline path, and the peek-miss fallback (e.g. {"island":2.0}).
    Parsed p = parse_request(line);
    if (!p.ok) {
      std::fprintf(stderr, "replay line %llu: %s\n",
                   static_cast<unsigned long long>(seq + 1), p.error.c_str());
      return 1;
    }
    if (p.request.op != Op::kSubmit) {
      std::fprintf(stderr, "replay line %llu: only SUBMIT is replayable\n",
                   static_cast<unsigned long long>(seq + 1));
      return 1;
    }
    p.request.seq = seq;
    p.request.conn_seq = seq;
    ++seq;
    svc.route(std::move(p.request));
  }
  const std::vector<Service::IslandResult> islands = svc.finalize_all();
  if (!errors.empty()) {
    std::sort(errors.begin(), errors.end());
    for (const auto& [s, e] : errors) {
      std::fprintf(stderr, "replay error: seq %llu: %s\n",
                   static_cast<unsigned long long>(s), e.c_str());
    }
    return 1;
  }
  std::string report;
  for (const auto& isl : islands) report += island_report(isl);
  std::fwrite(report.data(), 1, report.size(), stdout);
  std::fprintf(stderr, "replay: %zu island(s), %llu task(s), shards=%d\n",
               islands.size(), static_cast<unsigned long long>(seq),
               o.shards);

  if (!o.verify_batch) return 0;
  // Re-run every island through the batch simulator on the same arrivals
  // and require the identical byte surface (schedule CSV + counters).
  int rc = 0;
  for (const auto& isl : islands) {
    const auto policy = make_policy(o.policy);
    const SimResult batch =
        simulate(TaskSet(isl.tasks), sopt.cfg, *policy);
    Service::IslandResult want;
    want.island = isl.island;
    want.policy = isl.policy;
    want.submits = isl.submits;
    want.result = batch;
    const std::string got = island_report(isl);
    const std::string expect = island_report(want);
    if (got != expect || isl.result.horizon_lo != batch.horizon_lo ||
        isl.result.horizon_hi != batch.horizon_hi) {
      std::fprintf(stderr,
                   "verify FAILED: island %d differs from batch simulate() "
                   "(replayed %zu bytes, batch %zu bytes)\n",
                   isl.island, got.size(), expect.size());
      rc = 1;
    }
  }
  if (rc == 0) {
    std::fprintf(stderr,
                 "verify: %zu island(s) byte-identical to batch simulate()\n",
                 islands.size());
  }
  return rc;
}

/// Load generator: open --conns connections to a running daemon, partition
/// the canned stream by island (island % conns, preserving per-island
/// arrival order), pump every line, and time until the last response.
int run_load_gen(const Options& o) {
  if (o.load_gen <= 0 || o.connect_port < 0 || o.conns < 1) {
    std::fprintf(stderr,
                 "--load-gen needs a positive count, --connect PORT and "
                 "--conns >= 1\n");
    return 2;
  }
  const std::vector<StreamLine> stream =
      make_stream_lines(o.load_gen, o.islands, o.seed);
  std::vector<std::string> payload(static_cast<std::size_t>(o.conns));
  std::vector<long> expect(static_cast<std::size_t>(o.conns), 0);
  for (const StreamLine& l : stream) {
    const std::size_t c = static_cast<std::size_t>(l.island % o.conns);
    payload[c] += l.text;
    payload[c].push_back('\n');
    ++expect[c];
  }

  std::vector<int> fds;
  for (int c = 0; c < o.conns; ++c) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(o.connect_port));
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      std::fprintf(stderr, "cannot connect to 127.0.0.1:%d: %s\n",
                   o.connect_port, std::strerror(errno));
      for (const int f : fds) ::close(f);
      if (fd >= 0) ::close(fd);
      return 1;
    }
    fds.push_back(fd);
  }

  std::atomic<bool> failed{false};
  const std::uint64_t t0 = obs::now_ns();
  std::vector<std::thread> threads;
  for (int c = 0; c < o.conns; ++c) {
    // Writer and reader per connection: the daemon answers every line, so
    // a client that only writes would deadlock both socket buffers. The
    // writer must NOT half-close after the last line — the daemon treats
    // read-EOF as connection teardown and drops responses still in the
    // shard pipeline; the reader already knows how many lines to expect.
    threads.emplace_back([fd = fds[static_cast<std::size_t>(c)],
                          &data = payload[static_cast<std::size_t>(c)],
                          &failed] {
      std::size_t off = 0;
      while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          failed.store(true);
          return;
        }
        off += static_cast<std::size_t>(n);
      }
    });
    threads.emplace_back([fd = fds[static_cast<std::size_t>(c)],
                          want = expect[static_cast<std::size_t>(c)],
                          &failed] {
      char chunk[65536];
      long got = 0;
      while (got < want) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          failed.store(true);
          return;
        }
        for (ssize_t i = 0; i < n; ++i) {
          if (chunk[i] == '\n') ++got;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = static_cast<double>(obs::now_ns() - t0) / 1e9;
  for (const int fd : fds) ::close(fd);
  if (failed.load()) {
    std::fprintf(stderr, "load-gen: connection failed mid-run\n");
    return 1;
  }
  std::fprintf(stderr,
               "load-gen: %ld events, %d conn(s), %.3f s, %.0f events/s\n",
               o.load_gen, o.conns, secs,
               secs > 0.0 ? static_cast<double>(o.load_gen) / secs : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(usage(2));
      }
      return argv[++i];
    };
    if (arg == "--policy") {
      o.policy = value("--policy");
    } else if (arg == "--shards") {
      o.shards = std::atoi(value("--shards"));
      if (o.shards < 1) {
        std::fprintf(stderr, "--shards needs a positive integer\n");
        return usage(2);
      }
    } else if (arg == "--acceptors") {
      o.acceptors = std::atoi(value("--acceptors"));
      if (o.acceptors < 1) {
        std::fprintf(stderr, "--acceptors needs a positive integer\n");
        return usage(2);
      }
    } else if (arg == "--port") {
      o.port = std::atoi(value("--port"));
    } else if (arg == "--queue-capacity") {
      const long v = std::atol(value("--queue-capacity"));
      if (v < 1) {
        std::fprintf(stderr, "--queue-capacity needs a positive integer\n");
        return usage(2);
      }
      o.queue_capacity = static_cast<std::size_t>(v);
    } else if (arg == "--parse-on-ingest") {
      o.parse_on_ingest = true;
    } else if (arg == "--replay") {
      o.replay = value("--replay");
    } else if (arg == "--verify-batch") {
      o.verify_batch = true;
    } else if (arg == "--gen-stream") {
      o.gen_stream = std::atol(value("--gen-stream"));
    } else if (arg == "--islands") {
      o.islands = std::atoi(value("--islands"));
    } else if (arg == "--seed") {
      o.seed = static_cast<std::uint64_t>(std::atoll(value("--seed")));
    } else if (arg == "--load-gen") {
      o.load_gen = std::atol(value("--load-gen"));
    } else if (arg == "--connect") {
      o.connect_port = std::atoi(value("--connect"));
    } else if (arg == "--conns") {
      o.conns = std::atoi(value("--conns"));
    } else if (arg == "--trace") {
      o.trace = value("--trace");
    } else if (arg == "--metrics-interval") {
      o.metrics_interval = std::atof(value("--metrics-interval"));
      if (!(o.metrics_interval > 0.0)) {
        std::fprintf(stderr, "--metrics-interval needs a positive number\n");
        return usage(2);
      }
    } else if (arg == "--metrics-out") {
      o.metrics_out = value("--metrics-out");
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(2);
    }
  }

  if (!o.trace.empty()) sdem::obs::trace::start();
  int rc = 1;
  try {
    if (o.gen_stream > 0) {
      rc = run_gen_stream(o);
    } else if (o.load_gen > 0) {
      rc = run_load_gen(o);
    } else if (!o.replay.empty()) {
      rc = run_replay(o);
    } else {
      if ((o.metrics_interval > 0.0) != !o.metrics_out.empty()) {
        std::fprintf(stderr,
                     "--metrics-interval and --metrics-out go together\n");
        return usage(2);
      }
      DaemonOptions dopt;
      dopt.policy = o.policy;
      dopt.shards = o.shards;
      dopt.acceptors = o.acceptors;
      dopt.port = o.port;
      dopt.use_stdin = true;
      dopt.queue_capacity = o.queue_capacity;
      dopt.parse_on_shard = !o.parse_on_ingest;
      dopt.metrics_interval_s = o.metrics_interval;
      dopt.metrics_path = o.metrics_out;
      Daemon daemon(dopt);
      std::thread sig_watcher;
      if (::pipe(g_signal_pipe) == 0) {
        std::signal(SIGINT, on_terminate_signal);
        std::signal(SIGTERM, on_terminate_signal);
        sig_watcher = std::thread([&daemon] {
          char b;
          ssize_t n;
          do {
            n = ::read(g_signal_pipe[0], &b, 1);
          } while (n < 0 && errno == EINTR);
          // n == 0: main closed the write end after a normal exit.
          if (n > 0) daemon.request_stop();
        });
      }
      rc = daemon.run();
      if (sig_watcher.joinable()) {
        std::signal(SIGINT, SIG_DFL);
        std::signal(SIGTERM, SIG_DFL);
        ::close(g_signal_pipe[1]);  // EOF-wakes the watcher if no signal came
        sig_watcher.join();
        ::close(g_signal_pipe[0]);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!o.trace.empty()) {
    if (!sdem::obs::trace::write_file(o.trace)) {
      std::fprintf(stderr, "cannot write trace %s\n", o.trace.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace -> %s (open in chrome://tracing)\n",
                 o.trace.c_str());
  }
  return rc;
}
